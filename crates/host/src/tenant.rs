//! Host-side driver for time-multiplexed tenants.
//!
//! [`TenantHostDriver`] is the composition root of the virtualization
//! stack: it owns one [`TenantScheduler`] (the shell-side policy engine
//! over the PR plane), one [`DmaEngine`] + [`UnifiedControlKernel`]
//! (the shared control path), and one SQ/CQ ring pair **per tenant**
//! inside that tenant's pinned queue range. Each scheduler grant runs
//! one slice: the driver tops the resident tenant's submission ring up
//! from its backlog, ships the burst through the fault plane, rings the
//! kernel doorbell *with the slice's command budget*
//! ([`UnifiedControlKernel::ring_doorbell_budgeted`]), and polls the
//! completion ring. A tenant that floods its backlog therefore stalls
//! only its own rings — the kernel refuses to drain past the budget and
//! the scheduler hands the slot to the next tenant.
//!
//! Latencies are closed-loop: each completion is timed from the later
//! of its enqueue and the tenant's previous completion, the way a
//! client that issues its next command on ack would see it. Slices
//! where the tenant is preempted show up as exactly the inter-slice gap
//! in its tail — the noisy-neighbor signal `BENCH_tenancy.json`
//! quantifies.
//!
//! Fault semantics follow [`crate::batch`] per descriptor: a dropped or
//! nacked descriptor re-queues at the *front* of its tenant's backlog
//! under its original idempotency tag (the kernel replays, never
//! re-executes), a lost completion interrupt retries the same way, and
//! a burst lost to a down link burns the remainder of the slice (the
//! wire is dead; spinning would starve the other tenants' grants).
//! Everything is deterministic: no RNG outside the seeded fault plane,
//! ties broken by tenant index, byte-identical across engines and
//! thread counts.

use crate::batch::CmdSpec;
use crate::dma::{CommandDelivery, DmaEngine};
use harmonia_cmd::queue::{CommandBudget, CompletionStatus, SqDescriptor};
use harmonia_cmd::{
    CommandPacket, CompletionQueue, SrcId, SubmissionQueue, UnifiedControlKernel,
};
use harmonia_shell::sched::{SliceGrant, TenantScheduler};
use harmonia_sim::histo::LogHistogram;
use harmonia_sim::{FaultInjector, MetricsRegistry, Picos, TraceCollector};
use std::collections::{BTreeMap, VecDeque};

/// Default per-tenant ring depth: deliberately deeper than
/// [`BASE_SLICE_CMDS`](harmonia_shell::sched::BASE_SLICE_CMDS) so
/// kernel-side quota enforcement is observable — a flooding tenant
/// overfills its ring and the budgeted drain stops mid-ring.
pub const DEFAULT_TENANT_RING_DEPTH: usize = 128;

/// A command waiting in (or re-queued to) a tenant's backlog.
#[derive(Clone, Debug)]
struct PendingCmd {
    /// Idempotency tag — globally unique across tenants so kernel
    /// replay can never cross an isolation boundary.
    tag: u32,
    packet: CommandPacket,
    /// Clock at first enqueue (closed-loop latency origin).
    submitted_at: Picos,
}

/// One tenant's private slice of the host interface: rings inside its
/// pinned queue range, a backlog, and per-tenant accounting.
#[derive(Debug)]
struct TenantLane {
    sq: SubmissionQueue,
    cq: CompletionQueue,
    backlog: VecDeque<PendingCmd>,
    /// Descriptors pushed to the SQ whose completion has not been
    /// consumed yet, keyed by tag.
    inflight: BTreeMap<u32, PendingCmd>,
    latency: LogHistogram,
    /// Completion time of the tenant's latest acked command.
    last_done_ps: Picos,
    completed: u64,
    nacks: u64,
    timeouts: u64,
    errors: u64,
}

impl TenantLane {
    fn new(depth: usize) -> TenantLane {
        TenantLane {
            sq: SubmissionQueue::new(depth),
            cq: CompletionQueue::new(depth),
            backlog: VecDeque::new(),
            inflight: BTreeMap::new(),
            latency: LogHistogram::new(),
            last_done_ps: 0,
            completed: 0,
            nacks: 0,
            timeouts: 0,
            errors: 0,
        }
    }

    fn runnable(&self) -> bool {
        !self.backlog.is_empty() || !self.inflight.is_empty()
    }
}

/// Per-tenant accounting snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantStats {
    /// Commands acked.
    pub completed: u64,
    /// Wire-corruption NACKs (all retried).
    pub nacks: u64,
    /// Lost descriptors / bursts / completion interrupts (all retried).
    pub timeouts: u64,
    /// Typed kernel errors (terminal; the command is not retried).
    pub errors: u64,
    /// Scheduler slices this tenant received.
    pub slices: u64,
}

/// The multi-tenant host driver. See the module docs for the model.
#[derive(Debug)]
pub struct TenantHostDriver {
    sched: TenantScheduler,
    engine: DmaEngine,
    kernel: UnifiedControlKernel,
    lanes: Vec<TenantLane>,
    faults: FaultInjector,
    metrics: MetricsRegistry,
    clock_ps: Picos,
    next_tag: u32,
    slices_run: u64,
    quota_hits: u64,
    src: SrcId,
}

impl TenantHostDriver {
    /// Builds the driver over a pre-registered scheduler. One SQ/CQ
    /// pair of [`DEFAULT_TENANT_RING_DEPTH`] is carved per registered
    /// tenant.
    pub fn new(
        sched: TenantScheduler,
        engine: DmaEngine,
        kernel: UnifiedControlKernel,
    ) -> TenantHostDriver {
        Self::with_depth(sched, engine, kernel, DEFAULT_TENANT_RING_DEPTH)
    }

    /// [`TenantHostDriver::new`] with an explicit per-tenant ring depth.
    pub fn with_depth(
        sched: TenantScheduler,
        engine: DmaEngine,
        kernel: UnifiedControlKernel,
        depth: usize,
    ) -> TenantHostDriver {
        let lanes = (0..sched.tenant_count())
            .map(|_| TenantLane::new(depth))
            .collect();
        TenantHostDriver {
            sched,
            engine,
            kernel,
            lanes,
            faults: FaultInjector::none(),
            metrics: MetricsRegistry::default(),
            clock_ps: 0,
            next_tag: 0,
            slices_run: 0,
            quota_hits: 0,
            src: SrcId::Application,
        }
    }

    /// Wires one injector through the whole stack: per-descriptor
    /// drop/corrupt/irq-lost faults in the driver plus link/credit
    /// faults in the DMA engine, all drawing from the same schedule.
    pub fn set_fault_injector(&mut self, faults: FaultInjector) {
        self.engine.set_fault_injector(faults.clone());
        self.faults = faults;
    }

    /// Routes scheduler switches, DMA deliveries and kernel execution
    /// onto one trace collector.
    pub fn set_trace_collector(&mut self, trace: TraceCollector) {
        self.sched.set_trace_collector(trace.clone());
        self.engine.set_trace_collector(trace.clone());
        self.kernel.set_trace_collector(trace);
    }

    /// Routes `harmonia_tenant_*`, `harmonia_pr_*`, `harmonia_dma_*`
    /// and `harmonia_kernel_*` series onto one registry.
    pub fn set_metrics_registry(&mut self, metrics: MetricsRegistry) {
        self.sched.set_metrics_registry(metrics.clone());
        self.engine.set_metrics_registry(metrics.clone());
        self.kernel.set_metrics_registry(metrics.clone());
        self.metrics = metrics;
    }

    /// Queues commands on a tenant's backlog (closed-loop source).
    pub fn enqueue(&mut self, tenant: usize, cmds: Vec<CmdSpec>) {
        for (rbb_id, instance_id, code, data) in cmds {
            let tag = self.next_tag;
            self.next_tag += 1;
            let packet = CommandPacket::new(self.src, rbb_id, instance_id, code)
                .with_data(data)
                .with_idempotency_tag(tag);
            self.lanes[tenant].backlog.push_back(PendingCmd {
                tag,
                packet,
                submitted_at: self.clock_ps,
            });
        }
    }

    /// The scheduler (policy, slices granted, region accounting).
    pub fn scheduler(&self) -> &TenantScheduler {
        &self.sched
    }

    /// The driver's simulation clock.
    pub fn clock_ps(&self) -> Picos {
        self.clock_ps
    }

    /// Slices executed so far.
    pub fn slices_run(&self) -> u64 {
        self.slices_run
    }

    /// Slices ended by kernel quota enforcement (work still queued).
    pub fn quota_hits(&self) -> u64 {
        self.quota_hits
    }

    /// A tenant's closed-loop command-latency histogram.
    pub fn latency(&self, tenant: usize) -> &LogHistogram {
        &self.lanes[tenant].latency
    }

    /// A tenant's accounting snapshot.
    pub fn stats(&self, tenant: usize) -> TenantStats {
        let l = &self.lanes[tenant];
        TenantStats {
            completed: l.completed,
            nacks: l.nacks,
            timeouts: l.timeouts,
            errors: l.errors,
            slices: self.sched.slices_granted(tenant),
        }
    }

    /// Whether every backlog and ring has drained.
    pub fn idle(&self) -> bool {
        self.lanes.iter().all(|l| !l.runnable())
    }

    /// Runs scheduler slices until every tenant drains or `max_slices`
    /// is hit, returning the number of slices executed. Each call
    /// continues from the current clock — faults keyed to absolute
    /// simulation time line up across calls.
    pub fn run(&mut self, max_slices: u64) -> u64 {
        let mut executed = 0;
        while executed < max_slices {
            let runnable: Vec<bool> = self.lanes.iter().map(TenantLane::runnable).collect();
            let grant = self
                .sched
                .next_slice(self.clock_ps, &runnable)
                .expect("scheduler-reserved ranges cannot violate isolation");
            let Some(grant) = grant else { break };
            self.clock_ps += grant.switch_ps;
            self.run_slice(&grant);
            self.slices_run += 1;
            executed += 1;
        }
        executed
    }

    /// One granted slice: rounds of top-up → burst delivery → budgeted
    /// doorbell → CQ poll, until the tenant drains, the budget dies, or
    /// the slice's wall clock runs out.
    fn run_slice(&mut self, grant: &SliceGrant) {
        let t = grant.tenant;
        let mut budget = CommandBudget::new(t as u32, grant.budget_cmds);
        let deadline = self.clock_ps + grant.slice_ps;
        while self.lanes[t].runnable() && !budget.exhausted() && self.clock_ps < deadline {
            // Stage fresh descriptors into the free ring space.
            let lane = &mut self.lanes[t];
            let free = lane.sq.capacity() - lane.sq.len();
            let take = free.min(lane.backlog.len());
            let mut staged: Vec<(PendingCmd, Vec<u8>)> = Vec::with_capacity(take);
            let mut total_bytes = 0u32;
            for _ in 0..take {
                let p = lane.backlog.pop_front().expect("len was checked");
                let bytes = p.packet.encode();
                total_bytes += bytes.len() as u32;
                staged.push((p, bytes));
            }
            if !staged.is_empty() {
                let entries = staged.len() as u32;
                match self.engine.batch_delivery(total_bytes, entries, self.clock_ps) {
                    CommandDelivery::Lost { latency_ps } => {
                        // Link down: nothing reached the device. Put the
                        // burst back and burn the slice — retrying into a
                        // dead wire would starve every other grant.
                        let lane = &mut self.lanes[t];
                        lane.timeouts += staged.len() as u64;
                        for (p, _) in staged.into_iter().rev() {
                            lane.backlog.push_front(p);
                        }
                        self.clock_ps = (self.clock_ps + latency_ps).max(deadline);
                        break;
                    }
                    CommandDelivery::Delivered { latency_ps } => {
                        self.clock_ps += latency_ps;
                        let mut dropped: Vec<PendingCmd> = Vec::new();
                        for (p, mut bytes) in staged {
                            if self.faults.is_active()
                                && self.faults.drop_command(self.clock_ps)
                            {
                                dropped.push(p);
                                continue;
                            }
                            self.faults.corrupt_command(self.clock_ps, &mut bytes);
                            let lane = &mut self.lanes[t];
                            lane.sq
                                .push(SqDescriptor { tag: p.tag, bytes })
                                .expect("staging is capped at free ring space");
                            lane.inflight.insert(p.tag, p);
                        }
                        let lane = &mut self.lanes[t];
                        lane.timeouts += dropped.len() as u64;
                        for p in dropped.into_iter().rev() {
                            lane.backlog.push_front(p);
                        }
                    }
                }
            }
            let lane = &mut self.lanes[t];
            if lane.sq.is_empty() {
                // Every staged descriptor was dropped on the wire; the
                // clock already advanced, so loop for the retry.
                continue;
            }
            self.kernel.sync_clock(self.clock_ps);
            let n = lane.sq.len();
            let out = self.kernel.ring_doorbell_budgeted(
                &mut lane.sq,
                &mut lane.cq,
                n,
                self.src,
                &mut budget,
            );
            self.clock_ps += out.exec_ps;
            while let Some(rec) = lane.cq.pop() {
                let Some(p) = lane.inflight.remove(&rec.tag) else {
                    debug_assert!(false, "CQ record for unknown tag {}", rec.tag);
                    continue;
                };
                match rec.status {
                    CompletionStatus::Ok => {
                        if self.faults.irq_lost(self.clock_ps) {
                            // Executed but unheard-of: the replay cache
                            // makes the retry safe.
                            lane.timeouts += 1;
                            lane.backlog.push_front(p);
                            continue;
                        }
                        let start = p.submitted_at.max(lane.last_done_ps);
                        let latency = rec.at_ps.saturating_sub(start);
                        lane.last_done_ps = rec.at_ps;
                        lane.latency.record(latency);
                        lane.completed += 1;
                        self.metrics.observe(
                            "harmonia_tenant_cmd_latency_ps",
                            &[("tenant", self.sched.tenant_name(t))],
                            latency,
                        );
                        self.metrics.counter_inc(
                            "harmonia_tenant_cmds_total",
                            &[("tenant", self.sched.tenant_name(t))],
                        );
                    }
                    CompletionStatus::Nack { .. } => {
                        lane.nacks += 1;
                        lane.backlog.push_front(p);
                    }
                    CompletionStatus::Error => {
                        lane.errors += 1;
                    }
                }
            }
            if out.quota_exhausted {
                self.quota_hits += 1;
                self.metrics.counter_inc(
                    "harmonia_tenant_quota_exhausted_total",
                    &[("tenant", self.sched.tenant_name(t))],
                );
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_cmd::CommandCode;
    use harmonia_hw::device::catalog;
    use harmonia_hw::ip::PcieDmaIp;
    use harmonia_hw::resource::ResourceUsage;
    use harmonia_hw::Vendor;
    use harmonia_shell::pr::{MultiTenantRegion, TenantRole};
    use harmonia_shell::sched::{TenantPolicy, DEFAULT_TENANT_SLICE_PS};
    use harmonia_shell::{MemoryDemand, RoleSpec, TailoredShell, UnifiedShell};
    use harmonia_sim::{FaultKind, FaultPlan};

    fn driver(policy: TenantPolicy, weights: &[u64]) -> TenantHostDriver {
        let dev = catalog::device_a();
        let unified = UnifiedShell::for_device(&dev);
        let role = RoleSpec::builder("mt")
            .network_gbps(100)
            .network_ports(1)
            .memory(MemoryDemand::Ddr { channels: 1 })
            .build();
        let shell = TailoredShell::tailor(&unified, &role).unwrap();
        let region = MultiTenantRegion::partition(&shell, dev.capacity(), 1, 1024);
        let mut sched =
            TenantScheduler::new(region, 0, policy, DEFAULT_TENANT_SLICE_PS).unwrap();
        let logic = ResourceUsage::new(50_000, 80_000, 100, 20, 100);
        for (i, &w) in weights.iter().enumerate() {
            sched
                .register(TenantRole::new(format!("t{i}"), logic, 8), w)
                .unwrap();
        }
        let mut kernel = UnifiedControlKernel::new(64);
        kernel.attach_shell(shell.rbbs().iter().map(|r| r.as_ref()));
        let (gen, lanes) = dev.pcie().unwrap();
        let engine = DmaEngine::new(PcieDmaIp::new(Vendor::Xilinx, gen, lanes));
        TenantHostDriver::new(sched, engine, kernel)
    }

    fn health_reads(n: usize) -> Vec<CmdSpec> {
        (0..n)
            .map(|_| (0u8, 0u8, CommandCode::HealthRead, Vec::new()))
            .collect()
    }

    #[test]
    fn single_tenant_drains_without_preemption() {
        let mut d = driver(TenantPolicy::RoundRobin, &[1]);
        d.enqueue(0, health_reads(100));
        d.run(u64::MAX);
        assert!(d.idle());
        let s = d.stats(0);
        assert_eq!(s.completed, 100);
        assert_eq!((s.nacks, s.timeouts, s.errors), (0, 0, 0));
        assert_eq!(d.scheduler().switches(), 1, "one initial residency");
        assert_eq!(d.latency(0).count(), 100);
    }

    #[test]
    fn two_tenants_interleave_and_both_drain() {
        let mut d = driver(TenantPolicy::RoundRobin, &[1, 1]);
        d.enqueue(0, health_reads(200));
        d.enqueue(1, health_reads(200));
        d.run(u64::MAX);
        assert!(d.idle());
        assert_eq!(d.stats(0).completed, 200);
        assert_eq!(d.stats(1).completed, 200);
        assert!(
            d.scheduler().switches() > 2,
            "200 cmds over 64-cmd slices must preempt"
        );
    }

    #[test]
    fn flooding_tenant_hits_quota_without_blocking_the_victim() {
        let mut d = driver(TenantPolicy::WeightedFair, &[4, 1]);
        d.enqueue(0, health_reads(50));
        d.enqueue(1, health_reads(2000));
        d.run(u64::MAX);
        assert!(d.idle());
        assert_eq!(d.stats(0).completed, 50);
        assert_eq!(d.stats(1).completed, 2000);
        assert!(d.quota_hits() > 0, "the flood must trip quota enforcement");
    }

    #[test]
    fn campaign_faults_recover_through_replay() {
        let mut d = driver(TenantPolicy::RoundRobin, &[1, 1]);
        d.set_fault_injector(
            FaultPlan::new()
                .at(0, FaultKind::CmdDrop)
                .at(1, FaultKind::CmdCorrupt)
                .at(2, FaultKind::IrqLost)
                .injector(),
        );
        d.enqueue(0, health_reads(40));
        d.enqueue(1, health_reads(40));
        d.run(u64::MAX);
        assert!(d.idle());
        assert_eq!(d.stats(0).completed + d.stats(1).completed, 80);
        let total_recoveries: u64 = (0..2)
            .map(|t| d.stats(t).nacks + d.stats(t).timeouts)
            .sum();
        assert_eq!(total_recoveries, 3, "each armed fault fires exactly once");
    }

    #[test]
    fn link_down_burns_the_slice_but_converges_after_link_up() {
        let mut d = driver(TenantPolicy::RoundRobin, &[1, 1]);
        d.set_fault_injector(
            FaultPlan::new()
                .at(0, FaultKind::LinkDown)
                .at(30_000_000_000, FaultKind::LinkUp)
                .injector(),
        );
        d.enqueue(0, health_reads(30));
        d.enqueue(1, health_reads(30));
        d.run(u64::MAX);
        assert!(d.idle(), "work must converge once the link returns");
        assert_eq!(d.stats(0).completed + d.stats(1).completed, 60);
        assert!(d.stats(0).timeouts > 0 || d.stats(1).timeouts > 0);
        assert!(d.clock_ps() >= 30_000_000_000, "waited out the outage");
    }

    #[test]
    fn run_is_deterministic() {
        let run = || {
            let mut d = driver(TenantPolicy::WeightedFair, &[4, 2, 1]);
            d.set_fault_injector(
                FaultPlan::new()
                    .with_rates(
                        7,
                        harmonia_sim::FaultRates {
                            cmd_drop: 0.05,
                            cmd_corrupt: 0.05,
                            irq_lost: 0.05,
                            ecc: 0.0,
                        },
                    )
                    .injector(),
            );
            for t in 0..3 {
                d.enqueue(t, health_reads(150));
            }
            d.run(u64::MAX);
            let stats: Vec<TenantStats> = (0..3).map(|t| d.stats(t)).collect();
            let p99s: Vec<u64> = (0..3).map(|t| d.latency(t).p99()).collect();
            (stats, p99s, d.clock_ps(), d.slices_run(), d.quota_hits())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn max_slices_caps_execution() {
        let mut d = driver(TenantPolicy::RoundRobin, &[1, 1]);
        d.enqueue(0, health_reads(1000));
        d.enqueue(1, health_reads(1000));
        assert_eq!(d.run(3), 3);
        assert!(!d.idle());
        assert_eq!(d.slices_run(), 3);
    }
}
