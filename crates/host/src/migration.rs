//! Cross-platform migration analysis (Figure 13).
//!
//! §5.2: "We evaluate the changes made to the … software for initializing
//! all hardware modules while transitioning from device C to device D",
//! comparing the register interface against the command interface. A
//! modification is one script line added or removed under an LCS alignment
//! ([`harmonia_metrics::lcs_diff`]).

use crate::cmd_driver::command_script;
use crate::reg_driver::RegisterDriver;
use harmonia_hw::device::FpgaDevice;
use harmonia_metrics::lcs_diff;
use harmonia_shell::{RoleSpec, TailorError, TailoredShell, UnifiedShell};
use std::fmt;

/// Modification counts for one application migration.
///
/// ```
/// use harmonia_host::migration::{migration_report, MigrationReport};
/// use harmonia_hw::device::catalog;
/// use harmonia_shell::RoleSpec;
///
/// let role = RoleSpec::builder("l4lb").network_gbps(100).queues(64).build();
/// let report: MigrationReport =
///     migration_report(&catalog::device_c(), &role, &catalog::device_d(), &role).unwrap();
/// // The command interface needs far fewer changes than raw registers —
/// // the Figure 13 claim the fleet migration cost matrix is built on.
/// assert!(report.cmd_modifications <= report.reg_modifications);
/// assert!(report.reduction_factor() >= 1.0);
/// ```
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct MigrationReport {
    /// Register-interface script lines changed.
    pub reg_modifications: usize,
    /// Command-interface commands changed.
    pub cmd_modifications: usize,
}

impl MigrationReport {
    /// The reduction factor (register ÷ command modifications).
    ///
    /// When the command script needs no change at all, the reduction is
    /// reported against a single unavoidable re-deploy step, matching how
    /// the paper reports a finite factor.
    pub fn reduction_factor(&self) -> f64 {
        self.reg_modifications as f64 / self.cmd_modifications.max(1) as f64
    }
}

impl fmt::Display for MigrationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} register vs {} command modifications ({:.0}x)",
            self.reg_modifications,
            self.cmd_modifications,
            self.reduction_factor()
        )
    }
}

/// Tailors `role` onto a device, producing the shell the software talks to.
fn deploy(device: &FpgaDevice, role: &RoleSpec) -> Result<TailoredShell, TailorError> {
    let unified = UnifiedShell::for_device(device);
    TailoredShell::tailor(&unified, role)
}

/// Computes the modification counts for migrating an application from one
/// device (running `role_from`) to another (running `role_to` — roles may
/// legitimately differ when the target offers capabilities the source
/// lacked, e.g. picking up a DDR channel on device D).
///
/// # Errors
///
/// Propagates tailoring failures on either device.
pub fn migration_report(
    from_device: &FpgaDevice,
    role_from: &RoleSpec,
    to_device: &FpgaDevice,
    role_to: &RoleSpec,
) -> Result<MigrationReport, TailorError> {
    let shell_from = deploy(from_device, role_from)?;
    let shell_to = deploy(to_device, role_to)?;

    let reg_from = RegisterDriver::full_init_script(from_device, &shell_from);
    let reg_to = RegisterDriver::full_init_script(to_device, &shell_to);
    let mon_from = RegisterDriver::monitoring_script(&shell_from);
    let mon_to = RegisterDriver::monitoring_script(&shell_to);

    let cmd_from = command_script(&shell_from);
    let cmd_to = command_script(&shell_to);

    Ok(MigrationReport {
        reg_modifications: lcs_diff(&reg_from, &reg_to) + lcs_diff(&mon_from, &mon_to),
        cmd_modifications: lcs_diff(&cmd_from, &cmd_to),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_hw::device::catalog;
    use harmonia_shell::MemoryDemand;

    /// The paper's Host Network migration: device C → device D, picking up
    /// the DDR channel device D offers for flow tables.
    fn host_network_roles() -> (RoleSpec, RoleSpec) {
        let on_c = RoleSpec::builder("host-network")
            .network_gbps(100)
            .queues(256)
            .build();
        let on_d = RoleSpec::builder("host-network")
            .network_gbps(100)
            .queues(256)
            .memory(MemoryDemand::Ddr { channels: 1 })
            .build();
        (on_c, on_d)
    }

    #[test]
    fn c_to_d_reduction_in_fig13_band() {
        let (rc, rd) = host_network_roles();
        let report = migration_report(
            &catalog::device_c(),
            &rc,
            &catalog::device_d(),
            &rd,
        )
        .unwrap();
        assert!(
            report.cmd_modifications <= 8,
            "command mods {} not 'a handful'",
            report.cmd_modifications
        );
        assert!(
            report.reg_modifications > 50,
            "register mods {} implausibly small",
            report.reg_modifications
        );
        let x = report.reduction_factor();
        assert!(
            (30.0..=200.0).contains(&x),
            "reduction {x:.0}x far outside the Figure 13 band"
        );
    }

    #[test]
    fn identical_deployment_needs_no_changes() {
        let role = RoleSpec::builder("same").network_gbps(100).build();
        let report = migration_report(
            &catalog::device_a(),
            &role,
            &catalog::device_a(),
            &role,
        )
        .unwrap();
        assert_eq!(report.reg_modifications, 0);
        assert_eq!(report.cmd_modifications, 0);
        assert_eq!(report.reduction_factor(), 0.0);
    }

    #[test]
    fn cross_vendor_migration_changes_more_than_cross_chip() {
        let role = RoleSpec::builder("r").network_gbps(100).build();
        let a = catalog::device_a();
        let b = catalog::device_b();
        let c = catalog::device_c();
        let xchip = migration_report(&a, &role, &b, &role).unwrap();
        let xvendor = migration_report(&a, &role, &c, &role).unwrap();
        assert!(
            xvendor.reg_modifications > xchip.reg_modifications,
            "cross-vendor {} <= cross-chip {}",
            xvendor.reg_modifications,
            xchip.reg_modifications
        );
    }

    #[test]
    fn command_side_stays_stable_when_composition_matches() {
        // Same module composition on both devices → the command stream is
        // untouched even across vendors.
        let role = RoleSpec::builder("r").network_gbps(100).build();
        let report = migration_report(
            &catalog::device_a(),
            &role,
            &catalog::device_c(),
            &role,
        )
        .unwrap();
        assert_eq!(report.cmd_modifications, 0);
        assert!(report.reg_modifications > 0);
    }

    #[test]
    fn report_display() {
        let r = MigrationReport {
            reg_modifications: 420,
            cmd_modifications: 4,
        };
        assert!(r.to_string().contains("105x"));
    }
}
