//! Standalone control tool.
//!
//! Production servers host several controllers concurrently — applications,
//! the BMC and standalone operations tools (§3.3.3) — which is why command
//! execution is centralized in the FPGA-side kernel rather than any one
//! host process. This tool is the operations-side controller: board health,
//! statistics snapshots and module resets, all over the same command
//! interface with its own `SrcID`.

use crate::cmd_driver::CommandDriver;
use crate::dma::DmaEngine;
use harmonia_cmd::{CommandCode, KernelError, SrcId, UnifiedControlKernel};
use harmonia_shell::TailoredShell;
use harmonia_sim::{LogHistogram, MetricsRegistry, MetricsSnapshot, Trace, TraceCollector};
use std::fmt;

/// A board-health snapshot.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// FPGA junction temperature, °C.
    pub temp_fpga_c: u32,
    /// Board ambient temperature, °C.
    pub temp_board_c: u32,
    /// Core voltage, millivolts.
    pub vccint_mv: u32,
    /// 12 V rail, millivolts.
    pub vcc12_mv: u32,
}

impl fmt::Display for HealthSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fpga {}°C, board {}°C, vccint {} mV, 12V rail {} mV",
            self.temp_fpga_c, self.temp_board_c, self.vccint_mv, self.vcc12_mv
        )
    }
}

/// The standalone operations tool.
#[derive(Debug)]
pub struct ControlTool {
    driver: CommandDriver,
}

impl ControlTool {
    /// Connects the tool to a kernel through a DMA engine.
    pub fn connect(engine: DmaEngine, kernel: UnifiedControlKernel) -> Self {
        ControlTool {
            driver: CommandDriver::with_src(SrcId::CtrlTool, engine, kernel),
        }
    }

    /// Reads the board health block.
    ///
    /// # Errors
    ///
    /// Kernel-side failures.
    pub fn health(&mut self) -> Result<HealthSnapshot, KernelError> {
        let resp = self
            .driver
            .cmd_raw(0, 0, CommandCode::HealthRead, Vec::new())?;
        let [t1, t2, v1, v2] = resp.data[..] else {
            return Err(KernelError::BadPayload {
                expected: "4-word health block",
            });
        };
        Ok(HealthSnapshot {
            temp_fpga_c: t1,
            temp_board_c: t2,
            vccint_mv: v1,
            vcc12_mv: v2,
        })
    }

    /// Reads every module's statistics and the board health.
    ///
    /// # Errors
    ///
    /// Kernel-side failures.
    pub fn stats_snapshot(&mut self, shell: &TailoredShell) -> Result<Vec<u32>, KernelError> {
        self.driver.read_all_stats(shell)
    }

    /// Resets one module.
    ///
    /// # Errors
    ///
    /// Kernel-side failures.
    pub fn reset_module(&mut self, rbb_id: u8, instance: u8) -> Result<(), KernelError> {
        self.driver
            .cmd_raw(rbb_id, instance, CommandCode::ModuleReset, Vec::new())
            .map(|_| ())
    }

    /// The underlying driver (for inspection in tests/benches).
    pub fn driver(&self) -> &CommandDriver {
        &self.driver
    }

    /// Mutable driver access (fault injectors, trace collectors, policy).
    pub fn driver_mut(&mut self) -> &mut CommandDriver {
        &mut self.driver
    }

    /// The `trace` subcommand: runs a full monitoring sweep (every
    /// module's statistics plus board health) with tracing forced on and
    /// returns the captured [`Trace`] alongside the command-latency
    /// histogram. Export with [`Trace::export_perfetto`] or
    /// [`Trace::export_text`].
    ///
    /// # Errors
    ///
    /// Kernel-side failures.
    pub fn capture_trace(
        &mut self,
        shell: &TailoredShell,
    ) -> Result<(Trace, LogHistogram), KernelError> {
        let tc = TraceCollector::enabled();
        self.driver.set_trace_collector(tc.clone());
        self.stats_snapshot(shell)?;
        self.driver
            .set_trace_collector(TraceCollector::from_env());
        Ok((tc.take(), self.driver.latency_histogram().clone()))
    }

    /// The `metrics` subcommand: runs the same monitoring sweep with
    /// metrics forced on and returns the registry snapshot. Export with
    /// [`MetricsSnapshot::export_prometheus`] or
    /// [`MetricsSnapshot::export_json`].
    ///
    /// # Errors
    ///
    /// Kernel-side failures.
    pub fn capture_metrics(
        &mut self,
        shell: &TailoredShell,
    ) -> Result<MetricsSnapshot, KernelError> {
        let reg = MetricsRegistry::enabled();
        self.driver.set_metrics_registry(reg.clone());
        self.stats_snapshot(shell)?;
        self.driver.set_metrics_registry(MetricsRegistry::from_env());
        Ok(reg.snapshot())
    }

    /// The `flight-dump` subcommand: renders the driver's flight-recorder
    /// ring on demand (not just post-mortem). With metrics disabled the
    /// dump says so rather than returning an empty string.
    pub fn flight_dump(&self) -> String {
        self.driver.flight().dump()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_hw::device::catalog;
    use harmonia_hw::ip::PcieDmaIp;
    use harmonia_hw::Vendor;
    use harmonia_shell::{RoleSpec, TailoredShell, UnifiedShell};

    fn tool_and_shell() -> (ControlTool, TailoredShell) {
        let dev = catalog::device_a();
        let unified = UnifiedShell::for_device(&dev);
        let role = RoleSpec::builder("ops").network_gbps(100).build();
        let shell = TailoredShell::tailor(&unified, &role).unwrap();
        let mut kernel = UnifiedControlKernel::new(32);
        kernel.attach_shell(shell.rbbs().iter().map(|r| r.as_ref()));
        let engine = DmaEngine::new(PcieDmaIp::new(Vendor::Xilinx, 4, 8));
        (ControlTool::connect(engine, kernel), shell)
    }

    #[test]
    fn health_snapshot_reads_sensors() {
        let (mut tool, _) = tool_and_shell();
        let h = tool.health().unwrap();
        assert_eq!(h.temp_fpga_c, 41);
        assert_eq!(h.vcc12_mv, 12_010);
        assert!(h.to_string().contains("41°C"));
    }

    #[test]
    fn stats_snapshot_covers_all_modules() {
        let (mut tool, shell) = tool_and_shell();
        let stats = tool.stats_snapshot(&shell).unwrap();
        // 2 network (28 each) + host (32) + health (4).
        assert_eq!(stats.len(), 2 * 28 + 32 + 4);
    }

    #[test]
    fn reset_module_round_trip() {
        let (mut tool, _) = tool_and_shell();
        tool.reset_module(1, 0).unwrap();
        assert!(tool.reset_module(2, 0).is_err()); // no memory module
    }

    #[test]
    fn capture_trace_covers_the_monitoring_sweep() {
        let (mut tool, shell) = tool_and_shell();
        let (trace, histo) = tool.capture_trace(&shell).unwrap();
        // 3 StatsRead + 1 HealthRead, each an issue + delivery + exec + ack.
        assert_eq!(histo.count(), 4);
        // Each command contributes at least issue + exec + ack.
        assert!(trace.len() >= 12, "only {} events", trace.len());
        assert!(trace.export_perfetto().contains("\"kernel-exec\""));
        assert!(trace.export_text().contains("cmd-ack"));
        // The tool's own collector detaches afterwards (back to env gate).
        if std::env::var_os(harmonia_sim::TRACE_ENV).is_none() {
            assert!(!tool.driver().trace().is_enabled());
        }
    }

    #[test]
    fn capture_metrics_counts_the_monitoring_sweep() {
        let (mut tool, shell) = tool_and_shell();
        let snap = tool.capture_metrics(&shell).unwrap();
        // 3 StatsRead + 1 HealthRead, all acked.
        assert_eq!(snap.counter("harmonia_cmd_issued_total"), 4);
        assert_eq!(snap.counter("harmonia_cmd_acked_total"), 4);
        assert_eq!(snap.counter("harmonia_kernel_cmds_executed_total"), 4);
        assert_eq!(snap.counter("harmonia_dma_cmds_total"), 4);
        assert_eq!(snap.histogram("harmonia_cmd_latency_ps").count(), 4);
        assert!(snap.export_prometheus().contains("harmonia_cmd_acked_total 4"));
        // The forced registry detaches afterwards (back to the env gate).
        if std::env::var_os(harmonia_sim::METRICS_ENV).is_none() {
            assert!(!tool.driver().metrics().is_enabled());
        }
    }

    #[test]
    fn flight_dump_reports_disabled_without_metrics() {
        let (tool, _) = tool_and_shell();
        if !tool.driver().flight().is_enabled() {
            assert!(tool.flight_dump().contains("disabled"));
        }
    }

    #[test]
    fn tool_identifies_as_ctrl_tool() {
        let (tool, _) = tool_and_shell();
        assert_eq!(tool.driver().src(), SrcId::CtrlTool);
    }
}
