//! Harmonia's command-interface driver (`cmd_read` / `cmd_write`).
//!
//! The walkthrough of Figure 8: the driver builds command packets, ships
//! them through the DMA engine's dedicated control queue, the unified
//! control kernel executes them, and responses return tagged with the
//! originating `SrcID`. High-level operations (initialize everything, read
//! all statistics) are one command per module regardless of the platform
//! underneath — that is the whole Figure 13 story.

use crate::dma::DmaEngine;
use harmonia_cmd::{CommandCode, CommandPacket, KernelError, SrcId, UnifiedControlKernel};
use harmonia_shell::rbb::RbbKind;
use harmonia_shell::TailoredShell;
use harmonia_sim::Picos;
use std::collections::BTreeSet;

/// An abstract command issued by the driver — the unit Figure 13 counts
/// when diffing software across platforms.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct IssuedCommand {
    /// Target RBB id.
    pub rbb_id: u8,
    /// Target instance.
    pub instance_id: u8,
    /// Command code.
    pub code: u16,
}

/// The command-interface driver, bound to one FPGA (kernel) via DMA.
#[derive(Debug)]
pub struct CommandDriver {
    src: SrcId,
    engine: DmaEngine,
    kernel: UnifiedControlKernel,
    issued: Vec<IssuedCommand>,
    total_latency_ps: Picos,
}

impl CommandDriver {
    /// Creates a driver for an application controller.
    pub fn new(engine: DmaEngine, kernel: UnifiedControlKernel) -> Self {
        Self::with_src(SrcId::Application, engine, kernel)
    }

    /// Creates a driver for a specific controller type.
    pub fn with_src(src: SrcId, engine: DmaEngine, kernel: UnifiedControlKernel) -> Self {
        CommandDriver {
            src,
            engine,
            kernel,
            issued: Vec::new(),
            total_latency_ps: 0,
        }
    }

    /// The controller type this driver reports as.
    pub fn src(&self) -> SrcId {
        self.src
    }

    /// Access to the DMA engine (e.g. to toggle control isolation).
    pub fn engine_mut(&mut self) -> &mut DmaEngine {
        &mut self.engine
    }

    /// Issues one command and waits for its response (cmd_write/cmd_read
    /// collapse to this in the model; reads are commands whose response
    /// carries data).
    ///
    /// # Errors
    ///
    /// Kernel-side failures (unknown module, bad payload, register fault).
    pub fn cmd(
        &mut self,
        rbb: RbbKind,
        instance: u8,
        code: CommandCode,
        data: Vec<u32>,
    ) -> Result<CommandPacket, KernelError> {
        self.cmd_raw(rbb.id(), instance, code, data)
    }

    /// Issues a command to a raw RBB id (0 = device-level).
    ///
    /// # Errors
    ///
    /// Kernel-side failures.
    pub fn cmd_raw(
        &mut self,
        rbb_id: u8,
        instance: u8,
        code: CommandCode,
        data: Vec<u32>,
    ) -> Result<CommandPacket, KernelError> {
        let packet = CommandPacket::new(self.src, rbb_id, instance, code).with_data(data);
        let bytes = packet.encode();
        // Steps 2–3: transfer over the control queue and parse.
        self.total_latency_ps += self.engine.command_latency_ps(bytes.len() as u32);
        self.kernel.submit_bytes(&bytes)?;
        self.issued.push(IssuedCommand {
            rbb_id,
            instance_id: instance,
            code: code.to_u16(),
        });
        // Steps 4–7: execute and upload the response.
        let before = self.kernel.reg_ops_executed();
        let resp = self
            .kernel
            .step()?
            .expect("command was just submitted");
        let ops = self.kernel.reg_ops_executed() - before;
        self.total_latency_ps += UnifiedControlKernel::command_latency_ps(ops);
        Ok(resp)
    }

    /// Initializes every module of a shell: exactly one `ModuleInit` per
    /// module, platform details handled by the kernel.
    ///
    /// # Errors
    ///
    /// Stops at the first module that fails to initialize.
    pub fn init_shell(&mut self, shell: &TailoredShell) -> Result<(), KernelError> {
        let mut counters = std::collections::BTreeMap::new();
        for rbb in shell.rbbs() {
            let id = rbb.kind().id();
            let n: &mut u8 = counters.entry(id).or_insert(0);
            self.cmd_raw(id, *n, CommandCode::ModuleInit, Vec::new())?;
            *n += 1;
        }
        Ok(())
    }

    /// Reads all statistics: one `StatsRead` per module plus one board
    /// `HealthRead`.
    ///
    /// # Errors
    ///
    /// Kernel-side failures.
    pub fn read_all_stats(&mut self, shell: &TailoredShell) -> Result<Vec<u32>, KernelError> {
        let mut out = Vec::new();
        let mut counters = std::collections::BTreeMap::new();
        for rbb in shell.rbbs() {
            let id = rbb.kind().id();
            let n: &mut u8 = counters.entry(id).or_insert(0);
            let resp = self.cmd_raw(id, *n, CommandCode::StatsRead, Vec::new())?;
            out.extend(resp.data);
            *n += 1;
        }
        let health = self.cmd_raw(0, 0, CommandCode::HealthRead, Vec::new())?;
        out.extend(health.data);
        Ok(out)
    }

    /// Every command issued so far, in order — the command-interface
    /// "script" diffed by the migration analysis.
    pub fn issued(&self) -> &[IssuedCommand] {
        &self.issued
    }

    /// Distinct commands used (the Table 4 "Commands" count).
    pub fn distinct_commands(&self) -> usize {
        self.issued
            .iter()
            .copied()
            .collect::<BTreeSet<_>>()
            .len()
    }

    /// Accumulated control-path latency.
    pub fn total_latency_ps(&self) -> Picos {
        self.total_latency_ps
    }

    /// The kernel, for inspection.
    pub fn kernel(&self) -> &UnifiedControlKernel {
        &self.kernel
    }

    /// Mutable kernel access (hardware-side sensor/test injection).
    pub fn kernel_mut(&mut self) -> &mut UnifiedControlKernel {
        &mut self.kernel
    }
}

/// The command sequence an application issues to bring up and operate a
/// shell — computed without running a kernel, for migration diffing.
pub fn command_script(shell: &TailoredShell) -> Vec<IssuedCommand> {
    let mut script = Vec::new();
    let mut counters = std::collections::BTreeMap::new();
    for rbb in shell.rbbs() {
        let id = rbb.kind().id();
        let n: &mut u8 = counters.entry(id).or_insert(0);
        let codes: &[CommandCode] = match rbb.kind() {
            RbbKind::Network => &[
                CommandCode::ModuleReset,
                CommandCode::ModuleInit,
                CommandCode::ModuleStatusWrite,
                CommandCode::TableWrite,
                CommandCode::ModuleStatusRead,
            ],
            RbbKind::Memory => &[CommandCode::ModuleInit, CommandCode::ModuleStatusWrite],
            RbbKind::Host => &[
                CommandCode::ModuleReset,
                CommandCode::ModuleInit,
                CommandCode::ModuleStatusWrite,
                CommandCode::ModuleStatusRead,
            ],
        };
        for &code in codes {
            script.push(IssuedCommand {
                rbb_id: id,
                instance_id: *n,
                code: code.to_u16(),
            });
        }
        *n += 1;
    }
    script
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_hw::device::catalog;
    use harmonia_hw::ip::PcieDmaIp;
    use harmonia_hw::Vendor;
    use harmonia_shell::{MemoryDemand, RoleSpec, UnifiedShell};

    fn setup() -> (CommandDriver, TailoredShell) {
        let dev = catalog::device_a();
        let unified = UnifiedShell::for_device(&dev);
        let role = RoleSpec::builder("t")
            .network_gbps(100)
            .network_ports(1)
            .memory(MemoryDemand::Ddr { channels: 1 })
            .build();
        let shell = TailoredShell::tailor(&unified, &role).unwrap();
        let mut kernel = UnifiedControlKernel::new(64);
        kernel.attach_shell(shell.rbbs().iter().map(|r| r.as_ref()));
        let (gen, lanes) = dev.pcie().unwrap();
        let engine = DmaEngine::new(PcieDmaIp::new(Vendor::Xilinx, gen, lanes));
        (CommandDriver::new(engine, kernel), shell)
    }

    #[test]
    fn init_shell_is_one_command_per_module() {
        let (mut drv, shell) = setup();
        drv.init_shell(&shell).unwrap();
        assert_eq!(drv.issued().len(), 3); // net + mem + host
        assert!(drv.kernel().reg_ops_executed() > 20, "kernel did the work");
    }

    #[test]
    fn table4_monitoring_is_4_commands() {
        let (mut drv, shell) = setup();
        let stats = drv.read_all_stats(&shell).unwrap();
        assert_eq!(drv.issued().len(), 4); // 3 StatsRead + HealthRead
        assert_eq!(stats.len(), 84 + 4); // all monitor regs + 4 health words
    }

    #[test]
    fn command_script_shapes_match_table4() {
        let (_, shell) = setup();
        let script = command_script(&shell);
        let net: Vec<_> = script.iter().filter(|c| c.rbb_id == 1).collect();
        assert_eq!(net.len(), 5); // network init = 5 commands
        let host: Vec<_> = script.iter().filter(|c| c.rbb_id == 3).collect();
        assert_eq!(host.len(), 4); // host interaction = 4 commands
    }

    #[test]
    fn control_latency_accumulates() {
        let (mut drv, shell) = setup();
        drv.init_shell(&shell).unwrap();
        let lat = drv.total_latency_ps();
        assert!(lat > 0);
        // Each command is sub-10 µs: DMA base latency dominated.
        assert!(lat < 10_000_000 * drv.issued().len() as u64);
    }

    #[test]
    fn distinct_commands_deduplicates() {
        let (mut drv, _) = setup();
        for _ in 0..5 {
            drv.cmd_raw(0, 0, CommandCode::HealthRead, Vec::new())
                .unwrap();
        }
        assert_eq!(drv.issued().len(), 5);
        assert_eq!(drv.distinct_commands(), 1);
    }

    #[test]
    fn errors_propagate_from_kernel() {
        let (mut drv, _) = setup();
        let err = drv
            .cmd(RbbKind::Memory, 9, CommandCode::ModuleInit, Vec::new())
            .unwrap_err();
        assert!(matches!(err, KernelError::UnknownModule { .. }));
    }
}
