//! Harmonia's command-interface driver (`cmd_read` / `cmd_write`).
//!
//! The walkthrough of Figure 8: the driver builds command packets, ships
//! them through the DMA engine's dedicated control queue, the unified
//! control kernel executes them, and responses return tagged with the
//! originating `SrcID`. High-level operations (initialize everything, read
//! all statistics) are one command per module regardless of the platform
//! underneath — that is the whole Figure 13 story.

use crate::dma::{CommandDelivery, DmaEngine};
use crate::resilience::{DriverError, DriverReport, RetryPolicy};
use harmonia_cmd::{CommandCode, CommandPacket, KernelError, SrcId, UnifiedControlKernel};
use harmonia_shell::rbb::RbbKind;
use harmonia_shell::TailoredShell;
use harmonia_sim::{
    FaultInjector, FlightRecorder, LogHistogram, MetricsRegistry, Picos, Pipeline,
    TraceCollector, TraceEventKind,
};
use std::collections::BTreeSet;

/// Status-register value published for a module the driver took out of
/// service (visible through `ModuleStatusRead`/stats afterwards).
pub const DEGRADED_STATUS: u32 = 0xDEAD;

/// An abstract command issued by the driver — the unit Figure 13 counts
/// when diffing software across platforms.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct IssuedCommand {
    /// Target RBB id.
    pub rbb_id: u8,
    /// Target instance.
    pub instance_id: u8,
    /// Command code.
    pub code: u16,
}

/// The command-interface driver, bound to one FPGA (kernel) via DMA.
#[derive(Debug)]
pub struct CommandDriver {
    pub(crate) src: SrcId,
    pub(crate) engine: DmaEngine,
    pub(crate) kernel: UnifiedControlKernel,
    pub(crate) issued: Vec<IssuedCommand>,
    pub(crate) total_latency_ps: Picos,
    pub(crate) policy: RetryPolicy,
    pub(crate) report: DriverReport,
    pub(crate) faults: FaultInjector,
    pub(crate) next_tag: u32,
    /// Response-upload path: a zero-bubble pipeline whose scheduling
    /// errors surface as [`DriverError::ResponsePath`], never a panic.
    pub(crate) resp_pipe: Pipeline<u32>,
    /// Tags in completion order, per driver — retries must never reorder
    /// responses within one `SrcId`.
    pub(crate) acked_log: Vec<u32>,
    pub(crate) clock_ps: Picos,
    pub(crate) trace: TraceCollector,
    /// Issue→ack latency of every completed command, log-bucketed.
    pub(crate) latency_histo: LogHistogram,
    /// Metrics handle shared with the engine and kernel (disabled unless
    /// attached or enabled via `HARMONIA_METRICS`).
    pub(crate) metrics: MetricsRegistry,
    /// Bounded ring of recent command-path events, dumped as a
    /// post-mortem on [`DriverError::GaveUp`].
    pub(crate) flight: FlightRecorder,
    /// The post-mortem composed by the most recent give-up (None until a
    /// give-up happens with the flight recorder enabled).
    pub(crate) last_post_mortem: Option<String>,
}

impl CommandDriver {
    /// Creates a driver for an application controller.
    pub fn new(engine: DmaEngine, kernel: UnifiedControlKernel) -> Self {
        Self::with_src(SrcId::Application, engine, kernel)
    }

    /// Creates a driver for a specific controller type.
    pub fn with_src(src: SrcId, engine: DmaEngine, kernel: UnifiedControlKernel) -> Self {
        let mut driver = CommandDriver {
            src,
            engine,
            kernel,
            issued: Vec::new(),
            total_latency_ps: 0,
            policy: RetryPolicy::from_env(),
            report: DriverReport::default(),
            faults: FaultInjector::none(),
            next_tag: 0,
            resp_pipe: Pipeline::new(0),
            acked_log: Vec::new(),
            clock_ps: 0,
            trace: TraceCollector::disabled(),
            latency_histo: LogHistogram::new(),
            metrics: MetricsRegistry::disabled(),
            flight: FlightRecorder::disabled(),
            last_post_mortem: None,
        };
        driver.set_trace_collector(TraceCollector::from_env());
        driver.set_metrics_registry(MetricsRegistry::from_env());
        driver.flight = FlightRecorder::from_env();
        driver
    }

    /// Attaches an observability collector to this driver *and* its DMA
    /// engine and kernel (clones share one buffer, so the whole command
    /// path lands on a single timeline). [`CommandDriver::with_src`]
    /// consults [`harmonia_sim::trace::TRACE_ENV`] automatically; call
    /// this to override.
    pub fn set_trace_collector(&mut self, trace: TraceCollector) {
        self.engine.set_trace_collector(trace.clone());
        self.kernel.set_trace_collector(trace.clone());
        self.trace = trace;
    }

    /// The driver's observability collector (disabled unless attached or
    /// enabled via `HARMONIA_TRACE`).
    pub fn trace(&self) -> &TraceCollector {
        &self.trace
    }

    /// Attaches a metrics registry to this driver *and* its DMA engine
    /// and kernel (clones share one store, so the whole command path
    /// lands in one registry). [`CommandDriver::with_src`] consults
    /// [`harmonia_sim::metrics::METRICS_ENV`] automatically; call this to
    /// override.
    pub fn set_metrics_registry(&mut self, metrics: MetricsRegistry) {
        self.engine.set_metrics_registry(metrics.clone());
        self.kernel.set_metrics_registry(metrics.clone());
        self.metrics = metrics;
    }

    /// The driver's metrics registry (disabled unless attached or
    /// enabled via `HARMONIA_METRICS`).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Replaces the flight recorder (a bounded ring of recent
    /// command-path events). [`CommandDriver::with_src`] consults
    /// [`harmonia_sim::metrics::METRICS_ENV`] automatically; call this to
    /// override — e.g. with a larger ring for long campaigns.
    pub fn set_flight_recorder(&mut self, flight: FlightRecorder) {
        self.flight = flight;
    }

    /// The flight recorder (disabled unless attached or enabled via
    /// `HARMONIA_METRICS`).
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// The post-mortem composed by the most recent
    /// [`DriverError::GaveUp`]: a header identifying the failing command
    /// followed by the flight-recorder dump (its retries, timeouts and
    /// backoffs). `None` until a give-up happens with the flight recorder
    /// enabled.
    pub fn last_post_mortem(&self) -> Option<&str> {
        self.last_post_mortem.as_deref()
    }

    /// Issue→ack latency histogram over every completed command (both the
    /// legacy and the resilient path).
    pub fn latency_histogram(&self) -> &LogHistogram {
        &self.latency_histo
    }

    /// Attaches a fault injector to this driver *and* its DMA engine
    /// (clones share the plan state, so the schedule is consistent across
    /// the wire and the completion path).
    pub fn set_fault_injector(&mut self, faults: FaultInjector) {
        self.engine.set_fault_injector(faults.clone());
        self.faults = faults;
    }

    /// Replaces the retry/timeout policy.
    pub fn set_policy(&mut self, policy: RetryPolicy) {
        self.policy = policy;
    }

    /// The active retry/timeout policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Failure/recovery accounting so far.
    pub fn report(&self) -> &DriverReport {
        &self.report
    }

    /// Idempotency tags in completion order (the per-`SrcId` response
    /// ordering that retries must preserve).
    pub fn acked_log(&self) -> &[u32] {
        &self.acked_log
    }

    /// The driver's simulation clock (advanced by deliveries, execution,
    /// timeouts and backoff).
    pub fn clock_ps(&self) -> Picos {
        self.clock_ps
    }

    /// The controller type this driver reports as.
    pub fn src(&self) -> SrcId {
        self.src
    }

    /// Access to the DMA engine (e.g. to toggle control isolation).
    pub fn engine_mut(&mut self) -> &mut DmaEngine {
        &mut self.engine
    }

    /// The DMA engine, for inspection (send/doorbell counters).
    pub fn engine_ref(&self) -> &DmaEngine {
        &self.engine
    }

    /// Issues one command and waits for its response (cmd_write/cmd_read
    /// collapse to this in the model; reads are commands whose response
    /// carries data).
    ///
    /// # Errors
    ///
    /// Kernel-side failures (unknown module, bad payload, register fault).
    pub fn cmd(
        &mut self,
        rbb: RbbKind,
        instance: u8,
        code: CommandCode,
        data: Vec<u32>,
    ) -> Result<CommandPacket, KernelError> {
        self.cmd_raw(rbb.id(), instance, code, data)
    }

    /// Issues a command to a raw RBB id (0 = device-level).
    ///
    /// # Errors
    ///
    /// Kernel-side failures.
    pub fn cmd_raw(
        &mut self,
        rbb_id: u8,
        instance: u8,
        code: CommandCode,
        data: Vec<u32>,
    ) -> Result<CommandPacket, KernelError> {
        let packet = CommandPacket::new(self.src, rbb_id, instance, code).with_data(data);
        let bytes = packet.encode();
        self.report.issued += 1;
        self.metrics.counter_inc("harmonia_cmd_issued_total", &[]);
        // The legacy path keeps no real clock; accumulated latency is the
        // monotone pseudo-time its trace events are stamped with.
        let cmd_start = self.total_latency_ps;
        self.trace.instant(
            cmd_start,
            TraceEventKind::CmdIssue {
                code: code.to_u16(),
                rbb_id,
                instance_id: instance,
            },
        );
        // Steps 2–3: transfer over the control queue and parse.
        self.total_latency_ps += self.engine.command_latency_ps(bytes.len() as u32);
        self.kernel.sync_clock(self.total_latency_ps);
        self.kernel.submit_bytes(&bytes)?;
        self.issued.push(IssuedCommand {
            rbb_id,
            instance_id: instance,
            code: code.to_u16(),
        });
        // Steps 4–7: execute and upload the response.
        let before = self.kernel.reg_ops_executed();
        let resp = self
            .kernel
            .step()?
            .expect("command was just submitted");
        let ops = self.kernel.reg_ops_executed() - before;
        self.total_latency_ps += UnifiedControlKernel::command_latency_ps(ops);
        self.report.acked += 1;
        self.metrics.counter_inc("harmonia_cmd_acked_total", &[]);
        self.metrics.observe(
            "harmonia_cmd_latency_ps",
            &[],
            self.total_latency_ps - cmd_start,
        );
        self.trace.span(
            cmd_start,
            self.total_latency_ps - cmd_start,
            TraceEventKind::CmdAck {
                code: code.to_u16(),
                attempts: 1,
            },
        );
        self.latency_histo.record(self.total_latency_ps - cmd_start);
        Ok(resp)
    }

    /// Fault-tolerant command issue: per-command deadline, bounded
    /// retries with deterministic exponential backoff, idempotency
    /// tagging so a retried command is replayed rather than re-executed.
    ///
    /// Every call converges: `Ok(response)` or a typed [`DriverError`] —
    /// never a panic, never an un-accounted command.
    ///
    /// # Errors
    ///
    /// [`DriverError::Kernel`] for non-transient execution errors,
    /// [`DriverError::GaveUp`] when the retry budget runs out,
    /// [`DriverError::ResponsePath`] if the upload pipeline rejects a beat.
    pub fn cmd_resilient(
        &mut self,
        rbb: RbbKind,
        instance: u8,
        code: CommandCode,
        data: Vec<u32>,
    ) -> Result<CommandPacket, DriverError> {
        self.cmd_raw_resilient(rbb.id(), instance, code, data)
    }

    /// [`CommandDriver::cmd_resilient`] addressed by raw RBB id.
    ///
    /// # Errors
    ///
    /// See [`CommandDriver::cmd_resilient`].
    pub fn cmd_raw_resilient(
        &mut self,
        rbb_id: u8,
        instance: u8,
        code: CommandCode,
        data: Vec<u32>,
    ) -> Result<CommandPacket, DriverError> {
        let tag = self.next_tag;
        self.next_tag += 1;
        let packet = CommandPacket::new(self.src, rbb_id, instance, code)
            .with_data(data)
            .with_idempotency_tag(tag);
        self.report.issued += 1;
        self.metrics.counter_inc("harmonia_cmd_issued_total", &[]);
        self.issued.push(IssuedCommand {
            rbb_id,
            instance_id: instance,
            code: code.to_u16(),
        });
        let mut attempt: u32 = 0;
        let cmd_start = self.clock_ps;
        loop {
            let attempt_start = self.clock_ps;
            let issue_kind = TraceEventKind::CmdIssue {
                code: code.to_u16(),
                rbb_id,
                instance_id: instance,
            };
            self.flight.record(attempt_start, 0, issue_kind.clone());
            self.trace.instant(attempt_start, issue_kind);
            let mut bytes = packet.encode();
            match self.engine.command_delivery(bytes.len() as u32, attempt_start) {
                CommandDelivery::Delivered { latency_ps } => {
                    self.clock_ps += latency_ps;
                    self.total_latency_ps += latency_ps;
                }
                CommandDelivery::Lost { latency_ps } => {
                    // Nothing will ever arrive; wait out the deadline.
                    self.clock_ps += latency_ps;
                    self.timeout(attempt_start, packet.code.to_u16());
                    self.retry_or_give_up(&mut attempt, &packet)?;
                    continue;
                }
            }
            // Wire corruption between the DMA engine and the kernel
            // buffer: the kernel must NACK, not panic.
            self.faults.corrupt_command(self.clock_ps, &mut bytes);
            self.kernel.sync_clock(self.clock_ps);
            match self.kernel.submit_bytes_or_nack(&bytes, self.src) {
                Err(e) => return Err(DriverError::Kernel(e)),
                Ok(Some(nack)) => {
                    self.report.nacks += 1;
                    self.metrics.counter_inc("harmonia_cmd_nacks_total", &[]);
                    self.flight.record(
                        self.clock_ps,
                        0,
                        TraceEventKind::CmdNack {
                            error_code: nack.data[0],
                        },
                    );
                    self.retry_or_give_up(&mut attempt, &packet)?;
                    continue;
                }
                Ok(None) => {}
            }
            let before = self.kernel.reg_ops_executed();
            let resp = match self.kernel.step() {
                Err(e) => return Err(DriverError::Kernel(e)),
                // The command was accepted into an otherwise-drained
                // buffer, so a response is structurally guaranteed.
                Ok(r) => r.expect("command was just submitted"),
            };
            let ops = self.kernel.reg_ops_executed() - before;
            let exec_ps = UnifiedControlKernel::command_latency_ps(ops);
            self.clock_ps += exec_ps;
            self.total_latency_ps += exec_ps;
            // A lost completion interrupt: the command executed but the
            // host never hears about it. The idempotency tag makes the
            // retry safe — the kernel replays the cached response.
            if self.faults.irq_lost(self.clock_ps) {
                self.timeout(attempt_start, packet.code.to_u16());
                self.retry_or_give_up(&mut attempt, &packet)?;
                continue;
            }
            self.resp_pipe.push(self.clock_ps, tag)?;
            let uploaded = self.resp_pipe.pop(self.clock_ps);
            debug_assert_eq!(uploaded, Some(tag));
            self.acked_log.push(tag);
            self.report.acked += 1;
            self.metrics.counter_inc("harmonia_cmd_acked_total", &[]);
            self.metrics
                .observe("harmonia_cmd_latency_ps", &[], self.clock_ps - cmd_start);
            let ack_kind = TraceEventKind::CmdAck {
                code: code.to_u16(),
                attempts: attempt + 1,
            };
            self.flight
                .record(cmd_start, self.clock_ps - cmd_start, ack_kind.clone());
            self.trace
                .span(cmd_start, self.clock_ps - cmd_start, ack_kind);
            self.latency_histo.record(self.clock_ps - cmd_start);
            return Ok(resp);
        }
    }

    /// Burns the remainder of the per-command deadline.
    fn timeout(&mut self, attempt_start: Picos, code: u16) {
        self.report.timeouts += 1;
        self.metrics.counter_inc("harmonia_cmd_timeouts_total", &[]);
        self.clock_ps = self.clock_ps.max(attempt_start + self.policy.deadline_ps);
        self.flight
            .record(self.clock_ps, 0, TraceEventKind::CmdTimeout { code });
        self.trace
            .instant(self.clock_ps, TraceEventKind::CmdTimeout { code });
    }

    fn retry_or_give_up(
        &mut self,
        attempt: &mut u32,
        packet: &CommandPacket,
    ) -> Result<(), DriverError> {
        if *attempt >= self.policy.max_retries {
            self.report.gave_up += 1;
            self.metrics.counter_inc("harmonia_cmd_gave_up_total", &[]);
            let give_up = TraceEventKind::CmdGiveUp {
                code: packet.code.to_u16(),
                attempts: *attempt + 1,
            };
            self.flight.record(self.clock_ps, 0, give_up.clone());
            self.trace.instant(self.clock_ps, give_up);
            if self.flight.is_enabled() {
                self.last_post_mortem = Some(format!(
                    "post-mortem: gave up on cmd {:#06x} (rbb {} inst {}) after {} attempt(s), \
                     deadline {} ps\n{}",
                    packet.code.to_u16(),
                    packet.rbb_id,
                    packet.instance_id,
                    *attempt + 1,
                    self.policy.deadline_ps,
                    self.flight.dump()
                ));
            }
            return Err(DriverError::GaveUp {
                rbb_id: packet.rbb_id,
                instance_id: packet.instance_id,
                code: packet.code.to_u16(),
                attempts: *attempt + 1,
                deadline_ps: self.policy.deadline_ps,
            });
        }
        let backoff = self.policy.backoff_ps(*attempt);
        self.clock_ps += backoff;
        *attempt += 1;
        self.report.retries += 1;
        self.metrics.counter_inc("harmonia_cmd_retries_total", &[]);
        self.metrics
            .counter_add("harmonia_cmd_backoff_ps_total", &[], backoff);
        let retry = TraceEventKind::CmdRetry {
            code: packet.code.to_u16(),
            attempt: *attempt,
        };
        self.flight.record(self.clock_ps, 0, retry.clone());
        self.trace.instant(self.clock_ps, retry);
        Ok(())
    }

    /// Initializes every module of a shell: exactly one `ModuleInit` per
    /// module, platform details handled by the kernel.
    ///
    /// # Errors
    ///
    /// Stops at the first module that fails to initialize.
    pub fn init_shell(&mut self, shell: &TailoredShell) -> Result<(), KernelError> {
        let mut counters = std::collections::BTreeMap::new();
        for rbb in shell.rbbs() {
            let id = rbb.kind().id();
            let n: &mut u8 = counters.entry(id).or_insert(0);
            self.cmd_raw(id, *n, CommandCode::ModuleInit, Vec::new())?;
            *n += 1;
        }
        Ok(())
    }

    /// Fault-tolerant shell bring-up with graceful degradation: every
    /// module gets one idempotency-tagged `ModuleInit` through the retry
    /// machinery. A module whose retry budget runs out is marked
    /// [`harmonia_shell::RbbHealth::Degraded`] in the shell's health
    /// ledger and its status register is set to [`DEGRADED_STATUS`]; the
    /// remaining modules are still initialized — one dead MAC must not
    /// take the whole shell down.
    ///
    /// Returns the number of modules successfully initialized.
    ///
    /// # Errors
    ///
    /// Only non-transient failures ([`DriverError::Kernel`],
    /// [`DriverError::ResponsePath`]) propagate; give-ups degrade.
    pub fn init_shell_resilient(
        &mut self,
        shell: &mut TailoredShell,
    ) -> Result<usize, DriverError> {
        // Degradations recorded by the ledger land on this driver's
        // timeline and registry (disabled handles clone for free).
        shell.health_mut().set_trace_collector(self.trace.clone());
        shell.health_mut().set_metrics_registry(self.metrics.clone());
        let mut counters = std::collections::BTreeMap::new();
        let modules: Vec<(u8, u8)> = shell
            .rbbs()
            .iter()
            .map(|rbb| {
                let id = rbb.kind().id();
                let n: &mut u8 = counters.entry(id).or_insert(0);
                let inst = *n;
                *n += 1;
                (id, inst)
            })
            .collect();
        let mut initialized = 0;
        for (id, inst) in modules {
            match self.cmd_raw_resilient(id, inst, CommandCode::ModuleInit, Vec::new()) {
                Ok(_) => initialized += 1,
                Err(DriverError::GaveUp { .. }) => {
                    shell.health_mut().mark_degraded(id, inst, self.clock_ps);
                    // Publish the transition where stats readers see it.
                    if let Ok(regs) = self.kernel.module_regs_mut(id, inst) {
                        if let Some(addr) = regs.addr_of("status") {
                            let _ = regs.hw_set(addr, DEGRADED_STATUS);
                        }
                    }
                }
                Err(other) => return Err(other),
            }
        }
        Ok(initialized)
    }

    /// Reads statistics from every *serving* module (degraded modules are
    /// skipped — their last published status word says why) plus board
    /// health, through the resilient path.
    ///
    /// # Errors
    ///
    /// See [`CommandDriver::cmd_resilient`].
    pub fn read_all_stats_resilient(
        &mut self,
        shell: &TailoredShell,
    ) -> Result<Vec<u32>, DriverError> {
        let mut out = Vec::new();
        let mut counters = std::collections::BTreeMap::new();
        for rbb in shell.rbbs() {
            let id = rbb.kind().id();
            let n: &mut u8 = counters.entry(id).or_insert(0);
            let inst = *n;
            *n += 1;
            if shell.health().is_degraded(id, inst) {
                continue;
            }
            let resp = self.cmd_raw_resilient(id, inst, CommandCode::StatsRead, Vec::new())?;
            out.extend(resp.data);
        }
        let health = self.cmd_raw_resilient(0, 0, CommandCode::HealthRead, Vec::new())?;
        out.extend(health.data);
        Ok(out)
    }

    /// Reads all statistics: one `StatsRead` per module plus one board
    /// `HealthRead`.
    ///
    /// # Errors
    ///
    /// Kernel-side failures.
    pub fn read_all_stats(&mut self, shell: &TailoredShell) -> Result<Vec<u32>, KernelError> {
        let mut out = Vec::new();
        let mut counters = std::collections::BTreeMap::new();
        for rbb in shell.rbbs() {
            let id = rbb.kind().id();
            let n: &mut u8 = counters.entry(id).or_insert(0);
            let resp = self.cmd_raw(id, *n, CommandCode::StatsRead, Vec::new())?;
            out.extend(resp.data);
            *n += 1;
        }
        let health = self.cmd_raw(0, 0, CommandCode::HealthRead, Vec::new())?;
        out.extend(health.data);
        Ok(out)
    }

    /// Every command issued so far, in order — the command-interface
    /// "script" diffed by the migration analysis.
    pub fn issued(&self) -> &[IssuedCommand] {
        &self.issued
    }

    /// Distinct commands used (the Table 4 "Commands" count).
    pub fn distinct_commands(&self) -> usize {
        self.issued
            .iter()
            .copied()
            .collect::<BTreeSet<_>>()
            .len()
    }

    /// Accumulated control-path latency.
    pub fn total_latency_ps(&self) -> Picos {
        self.total_latency_ps
    }

    /// The kernel, for inspection.
    pub fn kernel(&self) -> &UnifiedControlKernel {
        &self.kernel
    }

    /// Mutable kernel access (hardware-side sensor/test injection).
    pub fn kernel_mut(&mut self) -> &mut UnifiedControlKernel {
        &mut self.kernel
    }
}

/// The command sequence an application issues to bring up and operate a
/// shell — computed without running a kernel, for migration diffing.
pub fn command_script(shell: &TailoredShell) -> Vec<IssuedCommand> {
    let mut script = Vec::new();
    let mut counters = std::collections::BTreeMap::new();
    for rbb in shell.rbbs() {
        let id = rbb.kind().id();
        let n: &mut u8 = counters.entry(id).or_insert(0);
        let codes: &[CommandCode] = match rbb.kind() {
            RbbKind::Network => &[
                CommandCode::ModuleReset,
                CommandCode::ModuleInit,
                CommandCode::ModuleStatusWrite,
                CommandCode::TableWrite,
                CommandCode::ModuleStatusRead,
            ],
            RbbKind::Memory => &[CommandCode::ModuleInit, CommandCode::ModuleStatusWrite],
            RbbKind::Host => &[
                CommandCode::ModuleReset,
                CommandCode::ModuleInit,
                CommandCode::ModuleStatusWrite,
                CommandCode::ModuleStatusRead,
            ],
        };
        for &code in codes {
            script.push(IssuedCommand {
                rbb_id: id,
                instance_id: *n,
                code: code.to_u16(),
            });
        }
        *n += 1;
    }
    script
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_hw::device::catalog;
    use harmonia_hw::ip::PcieDmaIp;
    use harmonia_hw::Vendor;
    use harmonia_shell::{MemoryDemand, RoleSpec, UnifiedShell};

    fn setup() -> (CommandDriver, TailoredShell) {
        let dev = catalog::device_a();
        let unified = UnifiedShell::for_device(&dev);
        let role = RoleSpec::builder("t")
            .network_gbps(100)
            .network_ports(1)
            .memory(MemoryDemand::Ddr { channels: 1 })
            .build();
        let shell = TailoredShell::tailor(&unified, &role).unwrap();
        let mut kernel = UnifiedControlKernel::new(64);
        kernel.attach_shell(shell.rbbs().iter().map(|r| r.as_ref()));
        let (gen, lanes) = dev.pcie().unwrap();
        let engine = DmaEngine::new(PcieDmaIp::new(Vendor::Xilinx, gen, lanes));
        (CommandDriver::new(engine, kernel), shell)
    }

    #[test]
    fn init_shell_is_one_command_per_module() {
        let (mut drv, shell) = setup();
        drv.init_shell(&shell).unwrap();
        assert_eq!(drv.issued().len(), 3); // net + mem + host
        assert!(drv.kernel().reg_ops_executed() > 20, "kernel did the work");
    }

    #[test]
    fn table4_monitoring_is_4_commands() {
        let (mut drv, shell) = setup();
        let stats = drv.read_all_stats(&shell).unwrap();
        assert_eq!(drv.issued().len(), 4); // 3 StatsRead + HealthRead
        assert_eq!(stats.len(), 84 + 4); // all monitor regs + 4 health words
    }

    #[test]
    fn command_script_shapes_match_table4() {
        let (_, shell) = setup();
        let script = command_script(&shell);
        let net: Vec<_> = script.iter().filter(|c| c.rbb_id == 1).collect();
        assert_eq!(net.len(), 5); // network init = 5 commands
        let host: Vec<_> = script.iter().filter(|c| c.rbb_id == 3).collect();
        assert_eq!(host.len(), 4); // host interaction = 4 commands
    }

    #[test]
    fn control_latency_accumulates() {
        let (mut drv, shell) = setup();
        drv.init_shell(&shell).unwrap();
        let lat = drv.total_latency_ps();
        assert!(lat > 0);
        // Each command is sub-10 µs: DMA base latency dominated.
        assert!(lat < 10_000_000 * drv.issued().len() as u64);
    }

    #[test]
    fn distinct_commands_deduplicates() {
        let (mut drv, _) = setup();
        for _ in 0..5 {
            drv.cmd_raw(0, 0, CommandCode::HealthRead, Vec::new())
                .unwrap();
        }
        assert_eq!(drv.issued().len(), 5);
        assert_eq!(drv.distinct_commands(), 1);
    }

    #[test]
    fn errors_propagate_from_kernel() {
        let (mut drv, _) = setup();
        let err = drv
            .cmd(RbbKind::Memory, 9, CommandCode::ModuleInit, Vec::new())
            .unwrap_err();
        assert!(matches!(err, KernelError::UnknownModule { .. }));
    }

    #[test]
    fn resilient_path_without_faults_matches_legacy_report() {
        use harmonia_sim::FaultPlan;
        let (mut legacy, shell) = setup();
        legacy.init_shell(&shell).unwrap();
        let (mut resilient, shell2) = setup();
        resilient.set_fault_injector(FaultPlan::none().injector());
        let mut counters = std::collections::BTreeMap::new();
        for rbb in shell2.rbbs() {
            let id = rbb.kind().id();
            let n: &mut u8 = counters.entry(id).or_insert(0);
            resilient
                .cmd_raw_resilient(id, *n, CommandCode::ModuleInit, Vec::new())
                .unwrap();
            *n += 1;
        }
        assert_eq!(legacy.report(), resilient.report());
        assert_eq!(format!("{}", legacy.report()), format!("{}", resilient.report()));
        assert!(resilient.report().converged());
        assert_eq!(resilient.acked_log(), &[0, 1, 2]);
    }

    #[test]
    fn lost_commands_retry_and_converge() {
        use harmonia_sim::{FaultKind, FaultPlan};
        let (mut drv, _) = setup();
        // First two transmissions are dropped; the third gets through.
        drv.set_fault_injector(
            FaultPlan::new()
                .at(0, FaultKind::CmdDrop)
                .at(1, FaultKind::CmdDrop)
                .injector(),
        );
        let resp = drv
            .cmd_raw_resilient(0, 0, CommandCode::HealthRead, Vec::new())
            .unwrap();
        assert_eq!(resp.data.len(), 4);
        let r = drv.report();
        assert!(r.retries >= 1, "{r}");
        assert!(r.timeouts >= 1, "{r}");
        assert!(r.converged(), "{r}");
    }

    #[test]
    fn exhausted_retries_give_up_with_accounting() {
        use harmonia_sim::{FaultKind, FaultPlan};
        let (mut drv, _) = setup();
        // Link goes down and never comes back.
        drv.set_fault_injector(FaultPlan::new().at(0, FaultKind::LinkDown).injector());
        let err = drv
            .cmd_raw_resilient(0, 0, CommandCode::HealthRead, Vec::new())
            .unwrap_err();
        match err {
            DriverError::GaveUp { attempts, .. } => {
                assert_eq!(attempts, drv.policy().max_retries + 1);
            }
            other => panic!("expected GaveUp, got {other:?}"),
        }
        let r = drv.report();
        assert_eq!(r.gave_up, 1);
        assert_eq!(r.timeouts, u64::from(drv.policy().max_retries) + 1);
        assert!(r.converged(), "{r}");
        // The clock advanced through every deadline and backoff.
        assert!(drv.clock_ps() >= drv.policy().deadline_ps * 5);
    }

    #[test]
    fn corrupted_wire_nacks_then_succeeds() {
        use harmonia_sim::{FaultKind, FaultPlan};
        let (mut drv, _) = setup();
        drv.set_fault_injector(FaultPlan::new().at(0, FaultKind::CmdCorrupt).injector());
        let resp = drv
            .cmd_raw_resilient(0, 0, CommandCode::HealthRead, Vec::new())
            .unwrap();
        assert_eq!(resp.data.len(), 4);
        let r = drv.report();
        assert_eq!(r.nacks, 1, "{r}");
        assert_eq!(r.retries, 1, "{r}");
        assert_eq!(drv.kernel().decode_errors(), 1);
    }

    #[test]
    fn lost_irq_replays_instead_of_double_applying() {
        use harmonia_sim::{FaultKind, FaultPlan};
        let (mut drv, _) = setup();
        drv.set_fault_injector(FaultPlan::new().at(0, FaultKind::IrqLost).injector());
        // ModuleInit is the side-effecting command the idempotency tags
        // exist for.
        let resp = drv
            .cmd_resilient(RbbKind::Network, 0, CommandCode::ModuleInit, Vec::new())
            .unwrap();
        assert!(!resp.data.is_empty());
        assert_eq!(drv.kernel().replays(), 1, "retry must replay, not re-run");
        assert_eq!(drv.kernel().commands_executed(), 1);
        assert_eq!(drv.report().timeouts, 1);
    }

    #[test]
    fn traced_retry_storm_lands_on_one_timeline() {
        use harmonia_sim::{FaultKind, FaultPlan, TraceCollector};
        let (mut drv, _) = setup();
        let tc = TraceCollector::enabled();
        drv.set_trace_collector(tc.clone());
        drv.set_fault_injector(
            FaultPlan::new()
                .at(0, FaultKind::CmdDrop)
                .at(1, FaultKind::CmdCorrupt)
                .injector(),
        );
        drv.cmd_raw_resilient(0, 0, CommandCode::HealthRead, Vec::new())
            .unwrap();
        let trace = tc.take();
        let names: Vec<&str> = trace.events().iter().map(|e| e.kind.name()).collect();
        // Driver, DMA engine and kernel all report into the same buffer.
        for expected in [
            "cmd-issue",
            "cmd-delivery",
            "cmd-timeout",
            "cmd-retry",
            "cmd-nack",
            "kernel-exec",
            "cmd-ack",
        ] {
            assert!(names.contains(&expected), "missing {expected} in {names:?}");
        }
        // Events arrive time-ordered; the ack span covers the whole run.
        let times: Vec<u64> = trace.events().iter().map(|e| e.at).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
        assert_eq!(drv.latency_histogram().count(), 1);
        assert!(drv.latency_histogram().max() >= drv.policy().deadline_ps);
    }

    #[test]
    fn tracing_never_changes_behavior() {
        use harmonia_sim::{FaultKind, FaultPlan, TraceCollector};
        let run = |traced: bool| {
            let (mut drv, mut shell) = setup();
            if traced {
                drv.set_trace_collector(TraceCollector::enabled());
            }
            let mut plan = FaultPlan::new().at(0, FaultKind::CmdDrop);
            for i in 0..5 {
                plan = plan.at(100 + i, FaultKind::CmdDrop);
            }
            drv.set_fault_injector(plan.injector());
            let initialized = drv.init_shell_resilient(&mut shell).unwrap();
            let stats = drv.read_all_stats_resilient(&shell).unwrap();
            (initialized, stats, drv.report().clone(), drv.clock_ps())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn legacy_path_populates_histogram_and_trace() {
        use harmonia_sim::TraceCollector;
        let (mut drv, shell) = setup();
        let tc = TraceCollector::enabled();
        drv.set_trace_collector(tc.clone());
        drv.init_shell(&shell).unwrap();
        assert_eq!(drv.latency_histogram().count(), 3);
        assert!(drv.latency_histogram().p50() > 0);
        let trace = tc.take();
        let acks = trace
            .events()
            .iter()
            .filter(|e| e.kind.name() == "cmd-ack")
            .count();
        assert_eq!(acks, 3);
    }

    #[test]
    fn degraded_module_does_not_block_the_rest() {
        use harmonia_sim::{FaultKind, FaultPlan};
        let (mut drv, mut shell) = setup();
        // Drop every transmission of the first module's init (5 attempts)
        // then recover: module 1 degrades, modules 2 and 3 come up.
        let mut plan = FaultPlan::new();
        for i in 0..5 {
            plan = plan.at(i, FaultKind::CmdDrop);
        }
        drv.set_fault_injector(plan.injector());
        let initialized = drv.init_shell_resilient(&mut shell).unwrap();
        assert_eq!(initialized, 2);
        assert_eq!(shell.health().degraded_count(), 1);
        assert_eq!(shell.serving_rbbs(), 2);
        assert!(shell.to_string().contains("(1 degraded)"));
        // The transition is visible through the normal stats path: the
        // degraded module is skipped, the rest still report.
        let stats = drv.read_all_stats_resilient(&shell).unwrap();
        assert!(!stats.is_empty());
        // And its status register says why.
        let net_id = RbbKind::Network.id();
        let regs = drv.kernel_mut().module_regs_mut(net_id, 0).unwrap();
        let addr = regs.addr_of("status").unwrap();
        assert_eq!(regs.read(addr).unwrap(), DEGRADED_STATUS);
    }
}
