//! The legacy register-interface driver.
//!
//! Commercial frameworks expose register read/write to user applications
//! (§2.3); the host software therefore owns, per platform, the full
//! register program: board bring-up, every module's vendor init sequence
//! (rebased into the unified address space the driver maps), table loads
//! and monitoring reads. All of it changes when the platform changes —
//! which is precisely what Figure 13 and Table 4 quantify against the
//! command interface.

use harmonia_hw::device::{FpgaDevice, Peripheral};
use harmonia_hw::regfile::RegOp;
use harmonia_shell::rbb::{Rbb, RbbKind};
use harmonia_shell::TailoredShell;
use std::collections::BTreeSet;

/// Number of packet-filter table entries a typical application loads.
pub const FILTER_TABLE_LOADS: u32 = 24;
/// Queue contexts programmed per 64 advertised queues.
pub const QUEUE_SETUPS_PER_64: u32 = 1;
/// Maximum queue contexts the driver programs directly.
pub const MAX_QUEUE_SETUPS: u32 = 8;

/// Stateless script generator for the register interface.
#[derive(Debug, Clone, Copy, Default)]
pub struct RegisterDriver;

impl RegisterDriver {
    /// Address-space stride between modules in the driver's unified
    /// mapping. Module bases depend on composition order, so adding or
    /// removing one module rebases everything after it — a major source of
    /// cross-platform modifications.
    pub const MODULE_STRIDE: u32 = 0x1_0000;

    fn rebase(ops: impl IntoIterator<Item = RegOp>, base: u32) -> Vec<RegOp> {
        ops.into_iter()
            .map(|op| match op {
                RegOp::Read { addr } => RegOp::Read { addr: addr + base },
                RegOp::Write { addr, value } => RegOp::Write {
                    addr: addr + base,
                    value,
                },
                RegOp::WaitStatus { addr, mask, expect } => RegOp::WaitStatus {
                    addr: addr + base,
                    mask,
                    expect,
                },
            })
            .collect()
    }

    /// Board bring-up: clocks, cage/GT lanes, PCIe and DRAM PHY presence.
    /// Derived entirely from the device description — every board differs.
    pub fn board_prologue(device: &FpgaDevice) -> Vec<RegOp> {
        let mut ops = Vec::new();
        // Clock tree programming: two ops per board reference clock.
        for (i, clk) in device.clock_sources().iter().enumerate() {
            let addr = 0xF000 + 8 * i as u32;
            ops.push(RegOp::Write {
                addr,
                value: (clk.hz() / 1_000_000) as u32,
            });
            ops.push(RegOp::Write {
                addr: addr + 4,
                value: 0x1,
            });
        }
        // Cage/GT bring-up: two ops per 25G lane, values carry the speed.
        for (i, p) in device.peripherals().iter().enumerate() {
            let base = 0xF100 + 0x40 * i as u32;
            match *p {
                Peripheral::Qsfp { gbps } | Peripheral::Dsfp { gbps } => {
                    for lane in 0..gbps / 25 {
                        ops.push(RegOp::Write {
                            addr: base + 8 * lane,
                            value: gbps,
                        });
                        ops.push(RegOp::Write {
                            addr: base + 8 * lane + 4,
                            value: 0x1,
                        });
                    }
                }
                Peripheral::Pcie { gen, lanes } => {
                    ops.push(RegOp::Write {
                        addr: base,
                        value: u32::from(gen),
                    });
                    ops.push(RegOp::Write {
                        addr: base + 4,
                        value: u32::from(lanes),
                    });
                    ops.push(RegOp::WaitStatus {
                        addr: base + 8,
                        mask: 1,
                        expect: 1,
                    });
                }
                Peripheral::Ddr { gen, gib } => {
                    ops.push(RegOp::Write {
                        addr: base,
                        value: u32::from(gen),
                    });
                    ops.push(RegOp::Write {
                        addr: base + 4,
                        value: gib,
                    });
                }
                Peripheral::Hbm { gib } => {
                    ops.push(RegOp::Write {
                        addr: base,
                        value: gib,
                    });
                    ops.push(RegOp::WaitStatus {
                        addr: base + 4,
                        mask: 1,
                        expect: 1,
                    });
                }
            }
        }
        ops
    }

    /// The Network RBB's initialization program at a module base: vendor
    /// MAC init, ex-function control, filter-table load. 115 operations for
    /// a 100G Xilinx-class instance — the Table 4 row.
    pub fn network_init_ops(rbb: &dyn Rbb, base: u32) -> Vec<RegOp> {
        debug_assert_eq!(rbb.kind(), RbbKind::Network);
        let mut ops = Self::rebase(rbb.instance().init_sequence(), base);
        // Ex-function control (RBB register space sits above the IP's).
        let rbb_base = base + 0x8000;
        for (addr, value) in [(0x000u32, 1u32), (0x004, 0), (0x008, 1)] {
            ops.push(RegOp::Write {
                addr: rbb_base + addr,
                value,
            });
        }
        // Filter-table load: 4 ops per entry.
        for entry in 0..FILTER_TABLE_LOADS {
            ops.push(RegOp::Write {
                addr: rbb_base + 0x010,
                value: entry,
            });
            ops.push(RegOp::Write {
                addr: rbb_base + 0x014,
                value: 0x0200_0000 + entry,
            });
            ops.push(RegOp::Write {
                addr: rbb_base + 0x018,
                value: 0x1122,
            });
            ops.push(RegOp::Write {
                addr: rbb_base + 0x01C,
                value: 0x1,
            });
        }
        ops
    }

    /// The Memory RBB's initialization program.
    pub fn memory_init_ops(rbb: &dyn Rbb, base: u32) -> Vec<RegOp> {
        debug_assert_eq!(rbb.kind(), RbbKind::Memory);
        let mut ops = Self::rebase(rbb.instance().init_sequence(), base);
        let rbb_base = base + 0x8000;
        ops.push(RegOp::Write {
            addr: rbb_base,
            value: 1,
        }); // interleave on
        ops.push(RegOp::Write {
            addr: rbb_base + 4,
            value: 1,
        }); // cache on
        ops
    }

    /// The Host RBB's configuration program: vendor DMA init plus direct
    /// queue-context setup. 60 operations for a Gen4 Xilinx-class instance
    /// — the Table 4 row.
    pub fn host_config_ops(rbb: &dyn Rbb, base: u32) -> Vec<RegOp> {
        debug_assert_eq!(rbb.kind(), RbbKind::Host);
        let mut ops = Self::rebase(rbb.instance().init_sequence(), base);
        let rbb_base = base + 0x8000;
        let setups = rbb
            .host_queue_hint()
            .map(|q| (u32::from(q) / 64 * QUEUE_SETUPS_PER_64).clamp(1, MAX_QUEUE_SETUPS))
            .unwrap_or(3);
        for q in 0..setups {
            for (off, value) in [
                (0x004u32, q),              // queue_sel
                (0x00C, 0x1000_0000 + q),   // ring_base_lo
                (0x010, 0),                 // ring_base_hi
                (0x014, 512),               // ring_size
            ] {
                ops.push(RegOp::Write {
                    addr: rbb_base + off,
                    value,
                });
            }
        }
        ops.push(RegOp::Write {
            addr: rbb_base,
            value: 1,
        }); // dma_ctrl
        ops.push(RegOp::Write {
            addr: rbb_base + 0x01C,
            value: 0x20,
        }); // irq_cfg
        ops
    }

    /// One module's init program dispatched by RBB kind.
    pub fn module_init_ops(rbb: &dyn Rbb, base: u32) -> Vec<RegOp> {
        match rbb.kind() {
            RbbKind::Network => Self::network_init_ops(rbb, base),
            RbbKind::Memory => Self::memory_init_ops(rbb, base),
            RbbKind::Host => Self::host_config_ops(rbb, base),
        }
    }

    /// The complete initialization script for a shell on a device: board
    /// prologue followed by every module's program at its mapped base.
    pub fn full_init_script(device: &FpgaDevice, shell: &TailoredShell) -> Vec<RegOp> {
        let mut script = Self::board_prologue(device);
        for (idx, rbb) in shell.rbbs().iter().enumerate() {
            let base = Self::MODULE_STRIDE * (idx as u32 + 1);
            script.extend(Self::module_init_ops(rbb.as_ref(), base));
        }
        script
    }

    /// The monitoring script: read every monitor register of every module.
    /// 84 operations for a one-Network/one-Memory/one-Host shell — the
    /// Table 4 row.
    pub fn monitoring_script(shell: &TailoredShell) -> Vec<RegOp> {
        let mut script = Vec::new();
        for (idx, rbb) in shell.rbbs().iter().enumerate() {
            let base = Self::MODULE_STRIDE * (idx as u32 + 1) + 0x8000;
            let rf = rbb.register_file();
            for (addr, name) in rf.iter() {
                if name.starts_with("mon_") {
                    script.push(RegOp::Read { addr: addr + base });
                }
            }
        }
        script
    }

    /// Distinct register addresses a script touches.
    pub fn distinct_registers(script: &[RegOp]) -> usize {
        script
            .iter()
            .map(|op| match *op {
                RegOp::Read { addr }
                | RegOp::Write { addr, .. }
                | RegOp::WaitStatus { addr, .. } => addr,
            })
            .collect::<BTreeSet<_>>()
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_hw::device::catalog;
    use harmonia_shell::{MemoryDemand, RoleSpec, UnifiedShell};

    fn shell_on_a() -> TailoredShell {
        let unified = UnifiedShell::for_device(&catalog::device_a());
        let role = RoleSpec::builder("t")
            .network_gbps(100)
            .network_ports(1)
            .memory(MemoryDemand::Ddr { channels: 1 })
            .queues(192)
            .build();
        TailoredShell::tailor(&unified, &role).unwrap()
    }

    #[test]
    fn table4_network_init_is_115_ops() {
        let shell = shell_on_a();
        let net = shell.rbbs_of(RbbKind::Network).next().unwrap();
        let ops = RegisterDriver::network_init_ops(net, 0x10000);
        assert_eq!(ops.len(), 115);
    }

    #[test]
    fn table4_host_config_is_60_ops() {
        let shell = shell_on_a();
        let host = shell.rbbs_of(RbbKind::Host).next().unwrap();
        let ops = RegisterDriver::host_config_ops(host, 0x30000);
        assert_eq!(ops.len(), 60);
    }

    #[test]
    fn table4_monitoring_is_84_ops() {
        let shell = shell_on_a();
        let ops = RegisterDriver::monitoring_script(&shell);
        assert_eq!(ops.len(), 84);
    }

    #[test]
    fn full_script_covers_all_modules() {
        let shell = shell_on_a();
        let dev = catalog::device_a();
        let script = RegisterDriver::full_init_script(&dev, &shell);
        // prologue + 115 + memory + 60.
        assert!(script.len() > 190, "only {} ops", script.len());
        // Bases keep module programs disjoint.
        assert!(RegisterDriver::distinct_registers(&script) > 40);
    }

    #[test]
    fn prologue_differs_between_boards() {
        let c = RegisterDriver::board_prologue(&catalog::device_c());
        let d = RegisterDriver::board_prologue(&catalog::device_d());
        assert_ne!(c, d);
        // C's 200G cages need twice the lane ops of D's 100G cages.
        assert!(c.len() > d.len() - 8);
    }

    #[test]
    fn rebase_shifts_every_op() {
        let ops = vec![
            RegOp::Read { addr: 4 },
            RegOp::WaitStatus {
                addr: 8,
                mask: 1,
                expect: 1,
            },
        ];
        let shifted = RegisterDriver::rebase(ops, 0x100);
        assert_eq!(shifted[0], RegOp::Read { addr: 0x104 });
        assert!(matches!(shifted[1], RegOp::WaitStatus { addr: 0x108, .. }));
    }
}
