//! Host-side batched command submission over the SQ/CQ ring pair.
//!
//! [`BatchedCommandDriver`] amortizes per-command control-path overhead
//! the way NVMe/QDMA drivers do: it writes up to N encoded descriptors
//! into the [`SubmissionQueue`], rings the kernel doorbell once (one DMA
//! burst for the whole chunk instead of one delivery per packet), drains
//! the [`CompletionQueue`], and coalesces completion interrupts per batch
//! through an [`IrqModerator`].
//!
//! Resilience semantics are PR 4's, applied **per entry**:
//!
//! * every entry carries its own idempotency tag, so a retried entry is
//!   replayed by the kernel, never re-executed;
//! * a burst lost on the wire (link down) times out every entry in it; a
//!   per-descriptor `CmdDrop`/`IrqLost` fault times out only that entry,
//!   and only the lost entries ride the next doorbell — replay recovers
//!   exactly what was lost;
//! * per-entry NACKs (wire corruption) and retry budgets are accounted
//!   identically to the one-at-a-time path ([`DriverReport`] fields mean
//!   the same thing).
//!
//! Two deliberate departures from the serial path, both batching
//! artifacts: entries retried from one round share a single deadline wait
//! and a single (maximum) backoff interval — they ride the next doorbell
//! together — and completion order may interleave across rounds under
//! faults (a retried entry completes after its batchmates). With
//! `batch == 1` neither applies: [`BatchedCommandDriver::submit`]
//! delegates every command straight to
//! [`CommandDriver::cmd_raw_resilient`], pinning the exact legacy path
//! byte for byte.

use crate::cmd_driver::{CommandDriver, IssuedCommand};
use crate::dma::{CommandDelivery, DmaEngine};
use crate::irq::{IrqModeration, IrqModerator, IrqReport};
use crate::resilience::{DriverError, DriverReport, RetryPolicy};
use harmonia_cmd::queue::{
    sq_depth_from_env, CompletionQueue, CompletionStatus, SqDescriptor, SubmissionQueue,
};
use harmonia_cmd::{CommandCode, CommandPacket, KernelError, UnifiedControlKernel};
use harmonia_sim::{
    FaultInjector, FlightRecorder, MetricsRegistry, Picos, TraceCollector, TraceEventKind,
};
use std::collections::{BTreeMap, VecDeque};

/// Environment override for the doorbell batch size.
pub const CMD_BATCH_ENV: &str = "HARMONIA_CMD_BATCH";

/// Default commands per doorbell.
pub const DEFAULT_CMD_BATCH: usize = 16;

/// Reads the batch size from [`CMD_BATCH_ENV`], falling back to
/// [`DEFAULT_CMD_BATCH`] for unset or unparsable values (minimum 1;
/// `HARMONIA_CMD_BATCH=1` selects the exact legacy path).
pub fn cmd_batch_from_env() -> usize {
    std::env::var(CMD_BATCH_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&b| b > 0)
        .unwrap_or(DEFAULT_CMD_BATCH)
}

/// One command to submit: `(rbb_id, instance_id, code, data)`.
pub type CmdSpec = (u8, u8, CommandCode, Vec<u32>);

/// Per-command outcome, same type the serial resilient path returns.
pub type CmdResult = Result<CommandPacket, DriverError>;

/// An in-flight batched command between doorbells.
struct Entry {
    /// Result slot in the caller's submission order.
    idx: usize,
    /// Idempotency tag (also the SQ descriptor / CQ record pairing key).
    tag: u32,
    packet: CommandPacket,
    /// Retries performed so far (0 = first transmission pending).
    attempt: u32,
    /// Clock at this entry's first transmission (ack-span origin).
    issued_at: Option<Picos>,
}

/// The batched command driver: a [`CommandDriver`] plus the SQ/CQ ring
/// pair, a doorbell batch size, and per-batch interrupt moderation.
#[derive(Debug)]
pub struct BatchedCommandDriver {
    inner: CommandDriver,
    batch: usize,
    sq: SubmissionQueue,
    cq: CompletionQueue,
    irq: IrqModerator,
}

impl BatchedCommandDriver {
    /// Creates a batched driver with the given batch size and the
    /// [`SQ_DEPTH_ENV`](harmonia_cmd::SQ_DEPTH_ENV)-controlled ring depth.
    pub fn new(engine: DmaEngine, kernel: UnifiedControlKernel, batch: usize) -> Self {
        Self::with_depth(engine, kernel, batch, sq_depth_from_env())
    }

    /// Creates a batched driver with explicit batch size and ring depth
    /// (the depth is rounded up to a power of two; SQ and CQ are sized
    /// together so a full drain can always post its completions).
    pub fn with_depth(
        engine: DmaEngine,
        kernel: UnifiedControlKernel,
        batch: usize,
        depth: usize,
    ) -> Self {
        let batch = batch.max(1);
        let inner = CommandDriver::new(engine, kernel);
        let mut irq = IrqModerator::new(IrqModeration {
            max_wait_ps: 50_000_000,
            batch_threshold: batch.min(u32::MAX as usize) as u32,
        });
        // Coalesced completion interrupts land in the same registry as
        // the rest of the command path (env-gated inside the inner
        // driver's constructor).
        irq.set_metrics_registry(inner.metrics().clone());
        BatchedCommandDriver {
            inner,
            batch,
            sq: SubmissionQueue::new(depth),
            cq: CompletionQueue::new(depth),
            irq,
        }
    }

    /// Creates a batched driver with the [`CMD_BATCH_ENV`]-controlled
    /// batch size.
    pub fn from_env(engine: DmaEngine, kernel: UnifiedControlKernel) -> Self {
        Self::new(engine, kernel, cmd_batch_from_env())
    }

    /// Commands per doorbell.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The wrapped serial driver (reports, logs, kernel, clock).
    pub fn inner(&self) -> &CommandDriver {
        &self.inner
    }

    /// Mutable access to the wrapped serial driver.
    pub fn inner_mut(&mut self) -> &mut CommandDriver {
        &mut self.inner
    }

    /// Failure/recovery accounting (same semantics as the serial path).
    pub fn report(&self) -> &DriverReport {
        self.inner.report()
    }

    /// Tags in completion order.
    pub fn acked_log(&self) -> &[u32] {
        self.inner.acked_log()
    }

    /// The driver's simulation clock.
    pub fn clock_ps(&self) -> Picos {
        self.inner.clock_ps()
    }

    /// Completion-interrupt moderation statistics: with batching on,
    /// `coalescing()` approaches the batch size.
    pub fn irq_report(&self) -> IrqReport {
        self.irq.report()
    }

    /// See [`CommandDriver::set_fault_injector`].
    pub fn set_fault_injector(&mut self, faults: FaultInjector) {
        self.inner.set_fault_injector(faults);
    }

    /// See [`CommandDriver::set_policy`].
    pub fn set_policy(&mut self, policy: RetryPolicy) {
        self.inner.set_policy(policy);
    }

    /// See [`CommandDriver::set_trace_collector`].
    pub fn set_trace_collector(&mut self, trace: TraceCollector) {
        self.inner.set_trace_collector(trace);
    }

    /// See [`CommandDriver::set_metrics_registry`] (also rewires the
    /// interrupt moderator's counters onto the new registry).
    pub fn set_metrics_registry(&mut self, metrics: MetricsRegistry) {
        self.irq.set_metrics_registry(metrics.clone());
        self.inner.set_metrics_registry(metrics);
    }

    /// See [`CommandDriver::set_flight_recorder`].
    pub fn set_flight_recorder(&mut self, flight: FlightRecorder) {
        self.inner.set_flight_recorder(flight);
    }

    /// See [`CommandDriver::last_post_mortem`].
    pub fn last_post_mortem(&self) -> Option<&str> {
        self.inner.last_post_mortem()
    }

    /// Submits a batch of commands and drives every one of them to
    /// convergence — acked or reported-failed — in submission order.
    ///
    /// With `batch == 1` this is exactly one
    /// [`CommandDriver::cmd_raw_resilient`] call per command (the legacy
    /// serial path, byte for byte). Otherwise commands go out up to
    /// `batch` per doorbell: one DMA burst, one kernel drain, one CQ
    /// poll, coalesced completion interrupts; entries that a fault takes
    /// out retry on a later doorbell under their original idempotency
    /// tags.
    pub fn submit(&mut self, cmds: Vec<CmdSpec>) -> Vec<CmdResult> {
        if self.batch <= 1 {
            return cmds
                .into_iter()
                .map(|(rbb, inst, code, data)| {
                    self.inner.cmd_raw_resilient(rbb, inst, code, data)
                })
                .collect();
        }
        let n = cmds.len();
        let mut results: Vec<Option<CmdResult>> = (0..n).map(|_| None).collect();
        let mut pending: VecDeque<Entry> = VecDeque::with_capacity(n);
        for (idx, (rbb_id, instance_id, code, data)) in cmds.into_iter().enumerate() {
            let tag = self.inner.next_tag;
            self.inner.next_tag += 1;
            let packet = CommandPacket::new(self.inner.src, rbb_id, instance_id, code)
                .with_data(data)
                .with_idempotency_tag(tag);
            self.inner.report.issued += 1;
            self.inner
                .metrics
                .counter_inc("harmonia_cmd_issued_total", &[]);
            self.inner.issued.push(IssuedCommand {
                rbb_id,
                instance_id,
                code: code.to_u16(),
            });
            pending.push_back(Entry {
                idx,
                tag,
                packet,
                attempt: 0,
                issued_at: None,
            });
        }
        while !pending.is_empty() {
            self.run_round(&mut pending, &mut results);
        }
        self.irq.flush(self.inner.clock_ps);
        results
            .into_iter()
            .map(|r| r.expect("every entry converges to ack or give-up"))
            .collect()
    }

    /// One doorbell round: take up to `batch` entries, ship them as one
    /// burst, drain the kernel, poll the CQ, and re-queue whatever a
    /// fault took out.
    fn run_round(
        &mut self,
        pending: &mut VecDeque<Entry>,
        results: &mut [Option<CmdResult>],
    ) {
        let cap = self.batch.min(self.sq.capacity());
        let mut round: Vec<Entry> = Vec::with_capacity(cap);
        while round.len() < cap {
            match pending.pop_front() {
                Some(e) => round.push(e),
                None => break,
            }
        }
        let round_start = self.inner.clock_ps;
        let mut total_bytes = 0u32;
        let mut encoded: Vec<Vec<u8>> = Vec::with_capacity(round.len());
        for e in &mut round {
            e.issued_at.get_or_insert(round_start);
            let issue = TraceEventKind::CmdIssue {
                code: e.packet.code.to_u16(),
                rbb_id: e.packet.rbb_id,
                instance_id: e.packet.instance_id,
            };
            self.inner.flight.record(round_start, 0, issue.clone());
            self.inner.trace.instant(round_start, issue);
            let bytes = e.packet.encode();
            total_bytes += bytes.len() as u32;
            encoded.push(bytes);
        }
        let entries = round.len() as u32;
        let delivery = self
            .inner
            .engine
            .batch_delivery(total_bytes, entries, round_start);
        let (CommandDelivery::Delivered { latency_ps } | CommandDelivery::Lost { latency_ps }) =
            delivery;
        self.inner.trace.span(
            round_start,
            latency_ps,
            TraceEventKind::BatchSubmit {
                entries,
                bytes: total_bytes,
            },
        );
        if let CommandDelivery::Lost { latency_ps } = delivery {
            // The whole burst vanished (link down): every entry waits out
            // the shared deadline, then retries or gives up.
            self.inner.clock_ps += latency_ps;
            self.timeout_entries(&round, round_start);
            self.requeue_or_give_up(round, pending, results);
            return;
        }
        self.inner.clock_ps += latency_ps;
        self.inner.total_latency_ps += latency_ps;
        // Per-descriptor wire faults, in the serial path's consult order:
        // drop first, then corruption. Dropped entries never reach the
        // ring; corrupted ones NACK out of the kernel.
        let mut lost: Vec<Entry> = Vec::new();
        let mut survivors: BTreeMap<u32, Entry> = BTreeMap::new();
        let mut pushed = 0usize;
        for (e, mut bytes) in round.into_iter().zip(encoded) {
            if self.inner.faults.is_active() && self.inner.faults.drop_command(self.inner.clock_ps)
            {
                lost.push(e);
                continue;
            }
            self.inner.faults.corrupt_command(self.inner.clock_ps, &mut bytes);
            self.sq
                .push(SqDescriptor { tag: e.tag, bytes })
                .expect("round is capped at the ring depth");
            survivors.insert(e.tag, e);
            pushed += 1;
        }
        self.inner.kernel.sync_clock(self.inner.clock_ps);
        let outcome =
            self.inner
                .kernel
                .ring_doorbell(&mut self.sq, &mut self.cq, pushed, self.inner.src);
        debug_assert_eq!(outcome.drained, pushed, "CQ is sized to the SQ");
        self.inner.clock_ps += outcome.exec_ps;
        self.inner.total_latency_ps += outcome.exec_ps;
        let mut responses: BTreeMap<u32, CommandPacket> = outcome.responses.into_iter().collect();
        let mut errors: BTreeMap<u32, KernelError> = outcome.errors.into_iter().collect();
        let mut nacked: Vec<Entry> = Vec::new();
        let mut polled = 0u32;
        let mut interrupts = 0u32;
        let mut upload_seq = 0u64;
        while let Some(rec) = self.cq.pop() {
            polled += 1;
            let Some(e) = survivors.remove(&rec.tag) else {
                debug_assert!(false, "CQ record for unknown tag {}", rec.tag);
                continue;
            };
            match rec.status {
                CompletionStatus::Ok => {
                    // A lost completion interrupt: the command executed,
                    // but the host never hears about it. The idempotency
                    // tag makes the retry a replay.
                    if self.inner.faults.irq_lost(self.inner.clock_ps) {
                        lost.push(e);
                        continue;
                    }
                    if self.irq.event(self.inner.clock_ps) {
                        interrupts += 1;
                    }
                    let resp = responses.remove(&rec.tag).expect("Ok record has a response");
                    let at = self.inner.clock_ps + upload_seq;
                    upload_seq += 1;
                    if let Err(err) = self.inner.resp_pipe.push(at, e.tag) {
                        results[e.idx] = Some(Err(err.into()));
                        continue;
                    }
                    let uploaded = self.inner.resp_pipe.pop(at);
                    debug_assert_eq!(uploaded, Some(e.tag));
                    self.inner.acked_log.push(e.tag);
                    self.inner.report.acked += 1;
                    self.inner
                        .metrics
                        .counter_inc("harmonia_cmd_acked_total", &[]);
                    let start = e.issued_at.unwrap_or(round_start);
                    self.inner.metrics.observe(
                        "harmonia_cmd_latency_ps",
                        &[],
                        self.inner.clock_ps - start,
                    );
                    let ack = TraceEventKind::CmdAck {
                        code: e.packet.code.to_u16(),
                        attempts: e.attempt + 1,
                    };
                    self.inner
                        .flight
                        .record(start, self.inner.clock_ps - start, ack.clone());
                    self.inner
                        .trace
                        .span(start, self.inner.clock_ps - start, ack);
                    self.inner.latency_histo.record(self.inner.clock_ps - start);
                    results[e.idx] = Some(Ok(resp));
                }
                CompletionStatus::Nack { error_code } => {
                    if self.irq.event(self.inner.clock_ps) {
                        interrupts += 1;
                    }
                    self.inner.report.nacks += 1;
                    self.inner
                        .metrics
                        .counter_inc("harmonia_cmd_nacks_total", &[]);
                    self.inner.flight.record(
                        self.inner.clock_ps,
                        0,
                        TraceEventKind::CmdNack { error_code },
                    );
                    nacked.push(e);
                }
                CompletionStatus::Error => {
                    if self.irq.event(self.inner.clock_ps) {
                        interrupts += 1;
                    }
                    let err = errors.remove(&rec.tag).expect("Error record has a kernel error");
                    results[e.idx] = Some(Err(DriverError::Kernel(err)));
                }
            }
        }
        self.inner.trace.instant(
            self.inner.clock_ps,
            TraceEventKind::BatchComplete {
                entries: polled,
                interrupts,
            },
        );
        if !lost.is_empty() {
            self.timeout_entries(&lost, round_start);
        }
        let mut retriers = lost;
        retriers.extend(nacked);
        if !retriers.is_empty() {
            self.requeue_or_give_up(retriers, pending, results);
        }
    }

    /// Deadline accounting for entries whose response will never arrive:
    /// one shared wait to `round_start + deadline`, one timeout per entry.
    fn timeout_entries(&mut self, entries: &[Entry], round_start: Picos) {
        self.inner.report.timeouts += entries.len() as u64;
        self.inner
            .metrics
            .counter_add("harmonia_cmd_timeouts_total", &[], entries.len() as u64);
        self.inner.clock_ps = self
            .inner
            .clock_ps
            .max(round_start + self.inner.policy.deadline_ps);
        for e in entries {
            let timeout = TraceEventKind::CmdTimeout {
                code: e.packet.code.to_u16(),
            };
            self.inner
                .flight
                .record(self.inner.clock_ps, 0, timeout.clone());
            self.inner.trace.instant(self.inner.clock_ps, timeout);
        }
    }

    /// Retry bookkeeping for a round's failed entries: budget-exhausted
    /// entries give up (typed error into their result slot); the rest
    /// back off together (the maximum of their individual intervals —
    /// they ride the next doorbell as one burst) and re-queue at the
    /// front in submission order.
    fn requeue_or_give_up(
        &mut self,
        mut retriers: Vec<Entry>,
        pending: &mut VecDeque<Entry>,
        results: &mut [Option<CmdResult>],
    ) {
        retriers.sort_by_key(|e| e.idx);
        let mut backoff: Picos = 0;
        let mut retained: Vec<Entry> = Vec::new();
        for mut e in retriers {
            if e.attempt >= self.inner.policy.max_retries {
                self.inner.report.gave_up += 1;
                self.inner
                    .metrics
                    .counter_inc("harmonia_cmd_gave_up_total", &[]);
                let give_up = TraceEventKind::CmdGiveUp {
                    code: e.packet.code.to_u16(),
                    attempts: e.attempt + 1,
                };
                self.inner
                    .flight
                    .record(self.inner.clock_ps, 0, give_up.clone());
                self.inner.trace.instant(self.inner.clock_ps, give_up);
                if self.inner.flight.is_enabled() {
                    self.inner.last_post_mortem = Some(format!(
                        "post-mortem: gave up on cmd {:#06x} (rbb {} inst {}) after {} \
                         attempt(s), deadline {} ps\n{}",
                        e.packet.code.to_u16(),
                        e.packet.rbb_id,
                        e.packet.instance_id,
                        e.attempt + 1,
                        self.inner.policy.deadline_ps,
                        self.inner.flight.dump()
                    ));
                }
                results[e.idx] = Some(Err(DriverError::GaveUp {
                    rbb_id: e.packet.rbb_id,
                    instance_id: e.packet.instance_id,
                    code: e.packet.code.to_u16(),
                    attempts: e.attempt + 1,
                    deadline_ps: self.inner.policy.deadline_ps,
                }));
            } else {
                backoff = backoff.max(self.inner.policy.backoff_ps(e.attempt));
                e.attempt += 1;
                self.inner.report.retries += 1;
                self.inner
                    .metrics
                    .counter_inc("harmonia_cmd_retries_total", &[]);
                retained.push(e);
            }
        }
        if retained.is_empty() {
            return;
        }
        self.inner.clock_ps += backoff;
        self.inner
            .metrics
            .counter_add("harmonia_cmd_backoff_ps_total", &[], backoff);
        for e in &retained {
            let retry = TraceEventKind::CmdRetry {
                code: e.packet.code.to_u16(),
                attempt: e.attempt,
            };
            self.inner
                .flight
                .record(self.inner.clock_ps, 0, retry.clone());
            self.inner.trace.instant(self.inner.clock_ps, retry);
        }
        for e in retained.into_iter().rev() {
            pending.push_front(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_hw::device::catalog;
    use harmonia_hw::ip::PcieDmaIp;
    use harmonia_hw::Vendor;
    use harmonia_shell::{MemoryDemand, RoleSpec, TailoredShell, UnifiedShell};

    fn setup(batch: usize) -> BatchedCommandDriver {
        let dev = catalog::device_a();
        let unified = UnifiedShell::for_device(&dev);
        let role = RoleSpec::builder("t")
            .network_gbps(100)
            .network_ports(1)
            .memory(MemoryDemand::Ddr { channels: 1 })
            .build();
        let shell = TailoredShell::tailor(&unified, &role).unwrap();
        let mut kernel = UnifiedControlKernel::new(64);
        kernel.attach_shell(shell.rbbs().iter().map(|r| r.as_ref()));
        let (gen, lanes) = dev.pcie().unwrap();
        let engine = DmaEngine::new(PcieDmaIp::new(Vendor::Xilinx, gen, lanes));
        BatchedCommandDriver::with_depth(engine, kernel, batch, 64)
    }

    fn health_reads(n: usize) -> Vec<CmdSpec> {
        (0..n)
            .map(|_| (0u8, 0u8, CommandCode::HealthRead, Vec::new()))
            .collect()
    }

    #[test]
    fn faultless_batch_acks_everything_in_order() {
        let mut drv = setup(16);
        let results = drv.submit(health_reads(32));
        assert_eq!(results.len(), 32);
        for r in &results {
            assert_eq!(r.as_ref().unwrap().data.len(), 4);
        }
        assert_eq!(drv.acked_log(), (0..32).collect::<Vec<u32>>());
        assert!(drv.report().converged());
        assert_eq!(drv.report().acked, 32);
        // 32 commands over batch=16 is exactly two doorbells.
        assert_eq!(drv.inner().kernel().commands_executed(), 32);
    }

    #[test]
    fn batching_amortizes_the_simulated_clock() {
        let mut batched = setup(16);
        batched.submit(health_reads(64));
        let mut serial = setup(1);
        serial.submit(health_reads(64));
        assert!(
            batched.clock_ps() * 2 < serial.clock_ps(),
            "batched {} ps not even 2x faster than serial {} ps",
            batched.clock_ps(),
            serial.clock_ps()
        );
    }

    #[test]
    fn interrupts_coalesce_per_batch() {
        let mut drv = setup(16);
        drv.submit(health_reads(64));
        let r = drv.irq_report();
        assert_eq!(r.events, 64);
        assert_eq!(r.interrupts, 4, "one interrupt per 16-command batch");
        assert_eq!(r.coalescing(), 16.0);
    }

    #[test]
    fn batch_one_delegates_to_the_legacy_path() {
        let mut drv = setup(1);
        let results = drv.submit(health_reads(4));
        assert!(results.iter().all(|r| r.is_ok()));
        // The legacy path raises no batch events and no moderated irqs.
        assert_eq!(drv.irq_report().events, 0);
        assert_eq!(drv.inner().engine_ref().doorbells(), 0);
        assert_eq!(drv.acked_log(), &[0, 1, 2, 3]);
    }

    #[test]
    fn kernel_errors_surface_per_entry_without_wedging_the_batch() {
        let mut drv = setup(8);
        let mut cmds = health_reads(3);
        // An unknown module: typed kernel error for this entry only.
        cmds.insert(1, (2, 9, CommandCode::ModuleReset, Vec::new()));
        let results = drv.submit(cmds);
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(DriverError::Kernel(KernelError::UnknownModule { .. }))
        ));
        assert!(results[2].is_ok() && results[3].is_ok());
        assert_eq!(drv.report().acked, 3);
    }

    #[test]
    fn per_entry_drop_recovers_only_the_lost_entry() {
        use harmonia_sim::{FaultKind, FaultPlan};
        let mut drv = setup(4);
        drv.set_fault_injector(FaultPlan::new().at(0, FaultKind::CmdDrop).injector());
        let results = drv.submit(health_reads(4));
        assert!(results.iter().all(|r| r.is_ok()));
        let r = drv.report();
        assert_eq!(r.timeouts, 1, "{r}");
        assert_eq!(r.retries, 1, "{r}");
        assert!(r.converged(), "{r}");
        // Only the dropped entry re-rode a doorbell: 4 + 1 transmissions.
        assert_eq!(drv.inner().engine_ref().commands_sent(), 5);
    }

    #[test]
    fn lost_irq_replays_instead_of_double_applying() {
        use harmonia_sim::{FaultKind, FaultPlan};
        let mut drv = setup(4);
        drv.set_fault_injector(FaultPlan::new().at(0, FaultKind::IrqLost).injector());
        let results = drv.submit(vec![
            (1, 0, CommandCode::ModuleInit, Vec::new()),
            (2, 0, CommandCode::ModuleInit, Vec::new()),
        ]);
        assert!(results.iter().all(|r| r.is_ok()));
        assert_eq!(drv.inner().kernel().replays(), 1, "retry must replay");
        assert_eq!(drv.inner().kernel().commands_executed(), 2);
        assert_eq!(drv.report().timeouts, 1);
    }

    #[test]
    fn corrupted_descriptor_nacks_then_succeeds() {
        use harmonia_sim::{FaultKind, FaultPlan};
        let mut drv = setup(4);
        drv.set_fault_injector(FaultPlan::new().at(0, FaultKind::CmdCorrupt).injector());
        let results = drv.submit(health_reads(4));
        assert!(results.iter().all(|r| r.is_ok()));
        let r = drv.report();
        assert_eq!(r.nacks, 1, "{r}");
        assert_eq!(r.retries, 1, "{r}");
        assert_eq!(drv.inner().kernel().decode_errors(), 1);
    }

    #[test]
    fn exhausted_retries_give_up_with_accounting() {
        use harmonia_sim::{FaultKind, FaultPlan};
        let mut drv = setup(4);
        drv.set_fault_injector(FaultPlan::new().at(0, FaultKind::LinkDown).injector());
        let results = drv.submit(health_reads(2));
        for r in &results {
            match r {
                Err(DriverError::GaveUp { attempts, .. }) => {
                    assert_eq!(*attempts, drv.inner().policy().max_retries + 1);
                }
                other => panic!("expected GaveUp, got {other:?}"),
            }
        }
        let rep = drv.report();
        assert_eq!(rep.gave_up, 2);
        assert!(rep.converged(), "{rep}");
    }

    #[test]
    fn batch_trace_spans_mark_submit_drain_complete() {
        use harmonia_sim::TraceCollector;
        let mut drv = setup(8);
        let tc = TraceCollector::enabled();
        drv.set_trace_collector(tc.clone());
        drv.submit(health_reads(8));
        let trace = tc.take();
        let names: Vec<&str> = trace.events().iter().map(|e| e.kind.name()).collect();
        for expected in ["batch-submit", "batch-drain", "batch-complete", "cmd-ack"] {
            assert!(names.contains(&expected), "missing {expected} in {names:?}");
        }
    }
}
