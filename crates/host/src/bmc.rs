//! Board management controller (BMC).
//!
//! §3.3.3 motivates the in-FPGA control kernel with the observation that
//! production servers carry *multiple* controllers — applications, the BMC
//! and standalone tools. This module is the BMC: it polls board health
//! through the same command interface (with its own `SrcID`), tracks
//! sensor history, raises threshold alarms, and can fence a module when a
//! sensor goes critical.

use crate::cmd_driver::CommandDriver;
use crate::dma::DmaEngine;
use harmonia_cmd::{CommandCode, KernelError, SrcId, UnifiedControlKernel};
use std::fmt;

/// BMC alarm thresholds.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BmcPolicy {
    /// Warning threshold for the FPGA junction temperature, °C.
    pub temp_warn_c: u32,
    /// Critical threshold — the BMC fences the board above this.
    pub temp_crit_c: u32,
    /// Acceptable VCCINT range, millivolts.
    pub vccint_range_mv: (u32, u32),
}

impl Default for BmcPolicy {
    fn default() -> Self {
        BmcPolicy {
            temp_warn_c: 85,
            temp_crit_c: 100,
            vccint_range_mv: (810, 890),
        }
    }
}

/// One health sample as the BMC records it.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct HealthSample {
    /// FPGA junction temperature, °C.
    pub temp_fpga_c: u32,
    /// Board ambient temperature, °C.
    pub temp_board_c: u32,
    /// Core voltage, millivolts.
    pub vccint_mv: u32,
}

/// Severity classification of a sample.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BmcStatus {
    /// All sensors nominal.
    Healthy,
    /// Temperature above the warning threshold.
    TempWarning,
    /// Temperature above the critical threshold (board fenced).
    TempCritical,
    /// Core voltage outside its window.
    VoltageFault,
}

impl fmt::Display for BmcStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BmcStatus::Healthy => "healthy",
            BmcStatus::TempWarning => "temp-warning",
            BmcStatus::TempCritical => "TEMP-CRITICAL",
            BmcStatus::VoltageFault => "voltage-fault",
        };
        f.write_str(s)
    }
}

/// The board management controller.
#[derive(Debug)]
pub struct BmcController {
    driver: CommandDriver,
    policy: BmcPolicy,
    history: Vec<(HealthSample, BmcStatus)>,
    fenced: bool,
}

impl BmcController {
    /// Connects a BMC to a control kernel.
    pub fn connect(engine: DmaEngine, kernel: UnifiedControlKernel, policy: BmcPolicy) -> Self {
        BmcController {
            driver: CommandDriver::with_src(SrcId::Bmc, engine, kernel),
            policy,
            history: Vec::new(),
            fenced: false,
        }
    }

    /// The alarm policy.
    pub fn policy(&self) -> BmcPolicy {
        self.policy
    }

    /// Whether the BMC has fenced the board.
    pub fn is_fenced(&self) -> bool {
        self.fenced
    }

    /// The sample history.
    pub fn history(&self) -> &[(HealthSample, BmcStatus)] {
        &self.history
    }

    fn classify(&self, s: &HealthSample) -> BmcStatus {
        if s.temp_fpga_c >= self.policy.temp_crit_c {
            BmcStatus::TempCritical
        } else if s.vccint_mv < self.policy.vccint_range_mv.0
            || s.vccint_mv > self.policy.vccint_range_mv.1
        {
            BmcStatus::VoltageFault
        } else if s.temp_fpga_c >= self.policy.temp_warn_c {
            BmcStatus::TempWarning
        } else {
            BmcStatus::Healthy
        }
    }

    /// Polls health once; on a critical temperature, fences the board by
    /// resetting every registered module class (best effort).
    ///
    /// # Errors
    ///
    /// Propagates command failures from the health read itself.
    pub fn poll(&mut self) -> Result<BmcStatus, KernelError> {
        let resp = self
            .driver
            .cmd_raw(0, 0, CommandCode::HealthRead, Vec::new())?;
        let sample = HealthSample {
            temp_fpga_c: resp.data[0],
            temp_board_c: resp.data[1],
            vccint_mv: resp.data[2],
        };
        let status = self.classify(&sample);
        self.history.push((sample, status));
        if status == BmcStatus::TempCritical && !self.fenced {
            self.fenced = true;
            // Fence: reset whatever modules exist; absent ones just error
            // and are skipped (the BMC does not know the shell layout).
            for rbb_id in 1..=3u8 {
                for inst in 0..2u8 {
                    let _ = self
                        .driver
                        .cmd_raw(rbb_id, inst, CommandCode::ModuleReset, Vec::new());
                }
            }
        }
        Ok(status)
    }

    /// Clears the fence after operator intervention.
    pub fn clear_fence(&mut self) {
        self.fenced = false;
    }

    /// Mutable kernel access for sensor injection in tests/benches.
    pub fn driver_mut(&mut self) -> &mut CommandDriver {
        &mut self.driver
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_hw::device::catalog;
    use harmonia_hw::ip::PcieDmaIp;
    use harmonia_hw::Vendor;
    use harmonia_shell::{RoleSpec, TailoredShell, UnifiedShell};

    fn bmc() -> BmcController {
        let dev = catalog::device_a();
        let unified = UnifiedShell::for_device(&dev);
        let role = RoleSpec::builder("bmc-test").network_gbps(100).build();
        let shell = TailoredShell::tailor(&unified, &role).unwrap();
        let mut kernel = UnifiedControlKernel::new(32);
        kernel.attach_shell(shell.rbbs().iter().map(|r| r.as_ref()));
        let engine = DmaEngine::new(PcieDmaIp::new(Vendor::Xilinx, 4, 8));
        BmcController::connect(engine, kernel, BmcPolicy::default())
    }

    #[test]
    fn nominal_sensors_are_healthy() {
        let mut b = bmc();
        assert_eq!(b.poll().unwrap(), BmcStatus::Healthy);
        assert!(!b.is_fenced());
        assert_eq!(b.history().len(), 1);
    }

    #[test]
    fn warning_then_critical_fences_once() {
        let mut b = bmc();
        b.driver_mut().kernel_mut().update_sensors(88, 40, 850);
        assert_eq!(b.poll().unwrap(), BmcStatus::TempWarning);
        assert!(!b.is_fenced());
        b.driver_mut().kernel_mut().update_sensors(104, 45, 850);
        assert_eq!(b.poll().unwrap(), BmcStatus::TempCritical);
        assert!(b.is_fenced());
        // Stays fenced until cleared.
        assert_eq!(b.poll().unwrap(), BmcStatus::TempCritical);
        b.clear_fence();
        b.driver_mut().kernel_mut().update_sensors(60, 40, 850);
        assert_eq!(b.poll().unwrap(), BmcStatus::Healthy);
    }

    #[test]
    fn voltage_fault_detected() {
        let mut b = bmc();
        b.driver_mut().kernel_mut().update_sensors(50, 40, 780);
        assert_eq!(b.poll().unwrap(), BmcStatus::VoltageFault);
        b.driver_mut().kernel_mut().update_sensors(50, 40, 905);
        assert_eq!(b.poll().unwrap(), BmcStatus::VoltageFault);
    }

    #[test]
    fn history_accumulates_in_order() {
        let mut b = bmc();
        for temp in [41, 70, 90] {
            b.driver_mut().kernel_mut().update_sensors(temp, 35, 850);
            b.poll().unwrap();
        }
        let temps: Vec<u32> = b.history().iter().map(|(s, _)| s.temp_fpga_c).collect();
        assert_eq!(temps, vec![41, 70, 90]);
        assert_eq!(b.history()[2].1, BmcStatus::TempWarning);
    }
}
