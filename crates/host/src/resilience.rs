//! Driver-side resilience policy: per-command deadlines, bounded retries
//! with deterministic exponential backoff, and the failure accounting the
//! fault campaigns assert over.
//!
//! Production control planes lose commands — a flapped link, a stalled
//! PCIe credit loop, a corrupted wire, a dropped completion interrupt.
//! The driver's contract is that every issued command converges to either
//! *acked* or *reported-failed* within a bounded number of attempts, with
//! no panics and no double-applied side effects (idempotency tags let the
//! kernel replay instead of re-execute).

use harmonia_cmd::KernelError;
use harmonia_sim::{Picos, PushError};
use std::error::Error;
use std::fmt;

/// Environment override for the per-command deadline, picoseconds.
pub const DEADLINE_ENV: &str = "HARMONIA_CMD_DEADLINE_PS";
/// Environment override for the retry budget.
pub const RETRIES_ENV: &str = "HARMONIA_CMD_RETRIES";
/// Environment override for the backoff base, picoseconds.
pub const BACKOFF_ENV: &str = "HARMONIA_CMD_BACKOFF_PS";

/// Retry/timeout policy for one command driver.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Per-command response deadline: if no response (or NACK) arrives
    /// within this window the attempt is a timeout.
    pub deadline_ps: Picos,
    /// Retries after the first attempt; `max_retries = 4` means at most
    /// five transmissions before the driver gives up.
    pub max_retries: u32,
    /// First backoff interval; attempt `n` waits `base << n`, capped at
    /// [`RetryPolicy::BACKOFF_CAP_PS`].
    pub backoff_base_ps: Picos,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            deadline_ps: 20_000_000,    // 20 µs
            max_retries: 4,
            backoff_base_ps: 1_000_000, // 1 µs
        }
    }
}

impl RetryPolicy {
    /// Upper bound on any single backoff interval (1 ms).
    pub const BACKOFF_CAP_PS: Picos = 1_000_000_000;

    /// Reads the policy from `HARMONIA_CMD_DEADLINE_PS`,
    /// `HARMONIA_CMD_RETRIES` and `HARMONIA_CMD_BACKOFF_PS`, falling back
    /// to the defaults for unset or unparsable values.
    pub fn from_env() -> Self {
        Self::from_values(
            std::env::var(DEADLINE_ENV).ok().as_deref(),
            std::env::var(RETRIES_ENV).ok().as_deref(),
            std::env::var(BACKOFF_ENV).ok().as_deref(),
        )
    }

    /// [`RetryPolicy::from_env`] with the raw variable values passed in —
    /// unset or unparsable values fall back to the defaults field-wise.
    pub fn from_values(
        deadline: Option<&str>,
        retries: Option<&str>,
        backoff: Option<&str>,
    ) -> Self {
        let d = RetryPolicy::default();
        fn parse<T: std::str::FromStr>(value: Option<&str>, default: T) -> T {
            value.and_then(|v| v.trim().parse().ok()).unwrap_or(default)
        }
        RetryPolicy {
            deadline_ps: parse(deadline, d.deadline_ps),
            max_retries: parse(retries, d.max_retries),
            backoff_base_ps: parse(backoff, d.backoff_base_ps),
        }
    }

    /// Deterministic exponential backoff before retry `attempt`
    /// (0-based): `base << attempt`, capped. No jitter — reproducibility
    /// is the whole point of the simulated control plane.
    pub fn backoff_ps(&self, attempt: u32) -> Picos {
        let factor = if attempt >= 63 {
            None
        } else {
            self.backoff_base_ps.checked_mul(1u64 << attempt)
        };
        factor.unwrap_or(Self::BACKOFF_CAP_PS).min(Self::BACKOFF_CAP_PS)
    }
}

/// Failure/recovery accounting for one driver, rendered into campaign
/// reports. With no faults injected every command is one attempt:
/// `issued == acked` and everything else stays zero — byte-identical to
/// the pre-fault-plane driver behavior.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DriverReport {
    /// Commands the application asked for (not counting retransmissions).
    pub issued: u64,
    /// Commands that completed with a response.
    pub acked: u64,
    /// Retransmissions performed (any cause).
    pub retries: u64,
    /// Attempts that hit the response deadline (lost command or lost
    /// completion interrupt).
    pub timeouts: u64,
    /// Attempts rejected by the kernel as undecodable (wire corruption).
    pub nacks: u64,
    /// Commands abandoned after the retry budget was exhausted.
    pub gave_up: u64,
}

impl DriverReport {
    /// Every issued command converged: acked or reported failed.
    pub fn converged(&self) -> bool {
        self.issued == self.acked + self.gave_up
    }
}

impl fmt::Display for DriverReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "driver[issued={} acked={} retries={} timeouts={} nacks={} gave-up={}]",
            self.issued, self.acked, self.retries, self.timeouts, self.nacks, self.gave_up
        )
    }
}

/// Driver-level failures (distinct from [`KernelError`]: these are the
/// host's own verdicts, after the retry machinery has run its course).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DriverError {
    /// The kernel reported a non-transient execution error (unknown
    /// module, bad payload, register fault) — retrying cannot help.
    Kernel(KernelError),
    /// The retry budget was exhausted without a response.
    GaveUp {
        /// Target RBB id.
        rbb_id: u8,
        /// Target instance.
        instance_id: u8,
        /// Command code.
        code: u16,
        /// Transmissions performed (first attempt + retries).
        attempts: u32,
        /// The per-attempt deadline that kept expiring.
        deadline_ps: Picos,
    },
    /// The response-upload pipeline refused a beat — a modeling-level
    /// scheduling collision, surfaced as data instead of a panic.
    ResponsePath(PushError<u32>),
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::Kernel(e) => write!(f, "kernel: {e}"),
            DriverError::GaveUp {
                rbb_id,
                instance_id,
                code,
                attempts,
                deadline_ps,
            } => write!(
                f,
                "gave up on command {code:#06x} to rbb {rbb_id}#{instance_id} \
                 after {attempts} attempts ({deadline_ps} ps deadline each)"
            ),
            DriverError::ResponsePath(e) => write!(f, "response path: {e}"),
        }
    }
}

impl Error for DriverError {}

impl From<KernelError> for DriverError {
    fn from(e: KernelError) -> Self {
        DriverError::Kernel(e)
    }
}

impl From<PushError<u32>> for DriverError {
    fn from(e: PushError<u32>) -> Self {
        DriverError::ResponsePath(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_caps() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_ps(0), 1_000_000);
        assert_eq!(p.backoff_ps(1), 2_000_000);
        assert_eq!(p.backoff_ps(3), 8_000_000);
        assert_eq!(p.backoff_ps(63), RetryPolicy::BACKOFF_CAP_PS);
        assert_eq!(p.backoff_ps(200), RetryPolicy::BACKOFF_CAP_PS);
    }

    #[test]
    fn knob_values_parse_with_field_wise_fallback() {
        let d = RetryPolicy::default();
        assert_eq!(RetryPolicy::from_values(None, None, None), d);
        let p = RetryPolicy::from_values(Some("5000000"), Some(" 2 "), Some("banana"));
        assert_eq!(p.deadline_ps, 5_000_000);
        assert_eq!(p.max_retries, 2);
        assert_eq!(p.backoff_base_ps, d.backoff_base_ps);
    }

    #[test]
    fn report_convergence_accounting() {
        let mut r = DriverReport::default();
        assert!(r.converged());
        r.issued = 3;
        r.acked = 2;
        assert!(!r.converged());
        r.gave_up = 1;
        assert!(r.converged());
        let s = r.to_string();
        assert!(s.contains("issued=3") && s.contains("gave-up=1"), "{s}");
    }

    #[test]
    fn driver_errors_render() {
        let e = DriverError::GaveUp {
            rbb_id: 1,
            instance_id: 0,
            code: 0x0002,
            attempts: 5,
            deadline_ps: 20_000_000,
        };
        assert!(e.to_string().contains("5 attempts"));
        let k: DriverError = KernelError::BufferFull.into();
        assert!(k.to_string().contains("buffer full"));
    }
}
