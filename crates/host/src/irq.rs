//! Interrupt moderation for the `irq` unified type.
//!
//! §3.2 carves out a special `irq` type for "latency-intensive signal
//! requirements" that bypasses the register path. On the host side, raw
//! event rates from a 100G NIC (up to ~148 Mpps) would melt any CPU if
//! every event raised an interrupt, so production drivers moderate:
//! coalesce events and fire at most one interrupt per window (or
//! immediately once a batch threshold is reached). This module models that
//! policy and quantifies the interrupt-rate / latency trade-off.

use harmonia_sim::event::WakeSource;
use harmonia_sim::{MetricsRegistry, Picos};

/// Interrupt moderation policy.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct IrqModeration {
    /// Maximum time an event may wait before an interrupt fires.
    pub max_wait_ps: Picos,
    /// Fire immediately once this many events are pending.
    pub batch_threshold: u32,
}

impl IrqModeration {
    /// A typical NIC setting: 50 µs coalescing window, 64-event batches.
    pub fn nic_default() -> Self {
        IrqModeration {
            max_wait_ps: 50_000_000,
            batch_threshold: 64,
        }
    }

    /// No moderation: every event interrupts immediately.
    pub fn immediate() -> Self {
        IrqModeration {
            max_wait_ps: 0,
            batch_threshold: 1,
        }
    }
}

/// Outcome of a moderation simulation.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct IrqReport {
    /// Events processed.
    pub events: u64,
    /// Interrupts raised.
    pub interrupts: u64,
    /// Mean event-to-interrupt delay, ps.
    pub mean_delay_ps: f64,
    /// Maximum event-to-interrupt delay, ps.
    pub max_delay_ps: Picos,
}

impl IrqReport {
    /// Events per interrupt (coalescing factor).
    pub fn coalescing(&self) -> f64 {
        if self.interrupts == 0 {
            0.0
        } else {
            self.events as f64 / self.interrupts as f64
        }
    }
}

/// Stateful interrupt moderator.
#[derive(Debug)]
pub struct IrqModerator {
    policy: IrqModeration,
    pending: u32,
    /// Arrival time of the oldest pending event.
    oldest_ps: Picos,
    events: u64,
    interrupts: u64,
    delay_sum: f64,
    delay_max: Picos,
    metrics: MetricsRegistry,
}

impl IrqModerator {
    /// Creates a moderator with the given policy.
    pub fn new(policy: IrqModeration) -> Self {
        IrqModerator {
            policy,
            pending: 0,
            oldest_ps: 0,
            events: 0,
            interrupts: 0,
            delay_sum: 0.0,
            delay_max: 0,
            metrics: MetricsRegistry::disabled(),
        }
    }

    /// Attaches a metrics registry: events and fired interrupts bump
    /// `harmonia_irq_events_total`/`harmonia_irq_interrupts_total`.
    /// Disabled registries cost one branch per hook.
    pub fn set_metrics_registry(&mut self, metrics: MetricsRegistry) {
        self.metrics = metrics;
    }

    fn fire(&mut self, now_ps: Picos) {
        debug_assert!(self.pending > 0);
        self.interrupts += 1;
        self.metrics.counter_inc("harmonia_irq_interrupts_total", &[]);
        let delay = now_ps - self.oldest_ps;
        // All pending events waited at most `delay`; attribute the oldest's
        // wait (the worst case) to the max and the average of a uniform
        // spread to the mean.
        self.delay_sum += delay as f64 / 2.0 * f64::from(self.pending);
        self.delay_max = self.delay_max.max(delay);
        self.pending = 0;
    }

    /// Feeds one event at `now_ps`; returns whether an interrupt fired.
    pub fn event(&mut self, now_ps: Picos) -> bool {
        // A timer expiry between events fires for the waiting batch first.
        if self.pending > 0 && now_ps >= self.oldest_ps + self.policy.max_wait_ps {
            self.fire(self.oldest_ps + self.policy.max_wait_ps);
        }
        if self.pending == 0 {
            self.oldest_ps = now_ps;
        }
        self.pending += 1;
        self.events += 1;
        self.metrics.counter_inc("harmonia_irq_events_total", &[]);
        if self.pending >= self.policy.batch_threshold {
            self.fire(now_ps);
            return true;
        }
        false
    }

    /// Flushes any pending batch: the coalescing timer fires at
    /// `oldest + max_wait` regardless of when the event stream ends.
    pub fn flush(&mut self, _now_ps: Picos) {
        if self.pending > 0 {
            self.fire(self.oldest_ps + self.policy.max_wait_ps);
        }
    }

    /// The report so far.
    pub fn report(&self) -> IrqReport {
        IrqReport {
            events: self.events,
            interrupts: self.interrupts,
            mean_delay_ps: if self.events == 0 {
                0.0
            } else {
                self.delay_sum / self.events as f64
            },
            max_delay_ps: self.delay_max,
        }
    }

    /// Absolute time the coalescing timer will fire for the oldest
    /// pending event, or `None` when nothing is pending.
    pub fn timer_deadline_ps(&self) -> Option<Picos> {
        (self.pending > 0).then(|| self.oldest_ps + self.policy.max_wait_ps)
    }

    /// Runs a uniform event stream: `count` events `gap_ps` apart.
    pub fn run_uniform(policy: IrqModeration, gap_ps: Picos, count: u64) -> IrqReport {
        let mut m = IrqModerator::new(policy);
        for i in 0..count {
            m.event(i * gap_ps);
        }
        m.flush(count * gap_ps);
        m.report()
    }
}

/// An event-driven host loop sleeps until the coalescing timer expires
/// instead of polling the moderator every tick; with nothing pending the
/// moderator is quiescent until external events arrive.
impl WakeSource for IrqModerator {
    fn next_wake(&self, now: Picos) -> Option<Picos> {
        self.timer_deadline_ps().map(|d| d.max(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_source_is_the_pending_timer_deadline() {
        let mut m = IrqModerator::new(IrqModeration {
            max_wait_ps: 5_000,
            batch_threshold: 64,
        });
        assert_eq!(m.next_wake(0), None, "nothing pending, nothing to wake for");
        m.event(1_000);
        assert_eq!(m.next_wake(1_000), Some(6_000));
        // A caller already past the deadline must still be woken "now",
        // never in the past.
        assert_eq!(m.next_wake(7_000), Some(7_000));
        m.flush(10_000);
        assert_eq!(m.next_wake(10_000), None);
    }

    #[test]
    fn empty_report_coalescing_is_zero() {
        // No events, no interrupts: the coalescing factor must be a clean
        // 0.0, not NaN from 0/0 — reports render into committed text.
        let m = IrqModerator::new(IrqModeration::nic_default());
        let r = m.report();
        assert_eq!(r.interrupts, 0);
        assert_eq!(r.coalescing(), 0.0);
        assert!(!r.coalescing().is_nan());
        assert_eq!(r.mean_delay_ps, 0.0);
    }

    #[test]
    fn immediate_policy_interrupts_every_event() {
        let r = IrqModerator::run_uniform(IrqModeration::immediate(), 1_000, 1_000);
        assert_eq!(r.interrupts, 1_000);
        assert_eq!(r.coalescing(), 1.0);
        assert_eq!(r.max_delay_ps, 0);
    }

    #[test]
    fn batching_cuts_interrupt_rate_by_the_threshold() {
        // Events every 1 ns: the 64-batch fills long before 50 µs.
        let r = IrqModerator::run_uniform(IrqModeration::nic_default(), 1_000, 64_000);
        assert_eq!(r.interrupts, 1_000);
        assert_eq!(r.coalescing(), 64.0);
        // Worst wait = 63 ns (first event of each batch).
        assert_eq!(r.max_delay_ps, 63_000);
    }

    #[test]
    fn timer_bounds_latency_for_sparse_events() {
        // One event per 200 µs: batches never fill; the 50 µs timer fires.
        let r = IrqModerator::run_uniform(IrqModeration::nic_default(), 200_000_000, 100);
        assert_eq!(r.interrupts, 100);
        assert_eq!(r.max_delay_ps, 50_000_000);
    }

    #[test]
    fn moderation_tradeoff_is_monotone() {
        // Stronger batching → fewer interrupts, more delay.
        let weak = IrqModerator::run_uniform(
            IrqModeration {
                max_wait_ps: 10_000_000,
                batch_threshold: 8,
            },
            100_000,
            10_000,
        );
        let strong = IrqModerator::run_uniform(
            IrqModeration {
                max_wait_ps: 10_000_000,
                batch_threshold: 128,
            },
            100_000,
            10_000,
        );
        assert!(strong.interrupts < weak.interrupts);
        assert!(strong.mean_delay_ps > weak.mean_delay_ps);
    }

    #[test]
    fn flush_accounts_for_stragglers() {
        let mut m = IrqModerator::new(IrqModeration::nic_default());
        m.event(0);
        m.event(1_000);
        assert_eq!(m.report().interrupts, 0);
        m.flush(2_000);
        let r = m.report();
        assert_eq!(r.interrupts, 1);
        assert_eq!(r.events, 2);
    }
}
