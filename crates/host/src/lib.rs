//! Host software stack for Harmonia.
//!
//! §2.1: host software "communicates with the FPGAs for data exchange and
//! control operations", performing initialization (table configuration,
//! task enablement) at deployment and data exchange at runtime. This crate
//! models both control-path styles the paper compares:
//!
//! * [`reg_driver`] — the legacy register interface: per-device register
//!   scripts whose addresses, lengths and op ordering change with every
//!   platform (the ad-hoc-modification source of Figures 3d and 13);
//! * [`cmd_driver`] — Harmonia's `cmd_read`/`cmd_write` interface driving
//!   the unified control kernel;
//! * [`dma`] — the DMA engine model with a separate control queue for
//!   performance isolation from the data path;
//! * [`migration`] — the Figure 13 analysis: modification counts when
//!   moving an application between devices under each interface;
//! * [`tool`] — the standalone control tool (one of the multiple
//!   controllers production servers run concurrently);
//! * [`irq`] — interrupt moderation for the latency-critical `irq` unified
//!   type (coalescing windows and batch thresholds);
//! * [`resilience`] — per-command deadlines, bounded retries with
//!   deterministic backoff, and the [`resilience::DriverReport`] failure
//!   accounting the fault campaigns assert over;
//! * [`batch`] — the batched SQ/CQ submission path: N commands per
//!   doorbell, one DMA burst per batch, coalesced completion interrupts;
//! * [`tenant`] — the multi-tenant host driver: per-tenant SQ/CQ rings
//!   inside scheduler-pinned queue ranges, driven one budget-enforced
//!   time slice at a time.

pub mod batch;
pub mod bmc;
pub mod cmd_driver;
pub mod dma;
pub mod irq;
pub mod migration;
pub mod reg_driver;
pub mod resilience;
pub mod tenant;
pub mod tool;

pub use batch::{BatchedCommandDriver, CMD_BATCH_ENV, DEFAULT_CMD_BATCH};
pub use bmc::{BmcController, BmcPolicy, BmcStatus};
pub use cmd_driver::{CommandDriver, DEGRADED_STATUS};
pub use dma::{CommandDelivery, DmaEngine};
pub use resilience::{DriverError, DriverReport, RetryPolicy};
pub use irq::{IrqModeration, IrqModerator};
pub use migration::{migration_report, MigrationReport};
pub use reg_driver::RegisterDriver;
pub use tenant::{TenantHostDriver, TenantStats, DEFAULT_TENANT_RING_DEPTH};
pub use tool::ControlTool;
