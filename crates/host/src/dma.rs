//! DMA engine model with control-queue isolation.
//!
//! §3.3.3: "Harmonia integrates a separate control queue in the DMA engine
//! to ensure performance isolation from the data path." This model charges
//! data transfers against the PCIe link model and lets commands either ride
//! the isolated control queue (constant latency) or — for the ablation —
//! share the data queues, where they wait behind buffered data.

use harmonia_hw::ip::PcieDmaIp;
use harmonia_sim::{
    FaultInjector, FaultKind, MetricsRegistry, Picos, Throughput, TraceCollector, TraceEventKind,
};

/// Outcome of shipping one command packet through the control queue.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CommandDelivery {
    /// The packet reached the device buffer after `latency_ps`.
    Delivered {
        /// Time spent on the wire (including any injected credit stall).
        latency_ps: Picos,
    },
    /// The packet was lost in flight (link down or an injected drop); the
    /// driver learns nothing until its deadline expires.
    Lost {
        /// Time spent before the loss (charged to the driver's clock).
        latency_ps: Picos,
    },
}

/// The host-side DMA engine.
#[derive(Debug)]
pub struct DmaEngine {
    dma: PcieDmaIp,
    ctrl_isolated: bool,
    /// Data bytes currently queued ahead of any shared-queue command.
    data_backlog_bytes: u64,
    data_sent: Throughput,
    commands_sent: u64,
    doorbells: u64,
    faults: FaultInjector,
    trace: TraceCollector,
    metrics: MetricsRegistry,
}

impl DmaEngine {
    /// Creates an engine over a PCIe DMA instance with an isolated control
    /// queue (the Harmonia default).
    pub fn new(dma: PcieDmaIp) -> Self {
        DmaEngine {
            dma,
            ctrl_isolated: true,
            data_backlog_bytes: 0,
            data_sent: Throughput::new(),
            commands_sent: 0,
            doorbells: 0,
            faults: FaultInjector::none(),
            trace: TraceCollector::disabled(),
            metrics: MetricsRegistry::disabled(),
        }
    }

    /// Attaches an observability collector: every
    /// [`DmaEngine::command_delivery`] emits a
    /// [`TraceEventKind::CmdDelivery`] span, and injected credit stalls
    /// emit [`TraceEventKind::FaultInjected`] instants.
    pub fn set_trace_collector(&mut self, trace: TraceCollector) {
        self.trace = trace;
    }

    /// Attaches a metrics registry: deliveries bump
    /// `harmonia_dma_cmds_total`/`harmonia_dma_bursts_total` and injected
    /// credit stalls bump the stall counters. Disabled registries cost
    /// one branch per hook.
    pub fn set_metrics_registry(&mut self, metrics: MetricsRegistry) {
        self.metrics = metrics;
    }

    /// Attaches a fault injector to the control queue (clones share the
    /// plan's state, so one schedule drives every layer consistently).
    pub fn set_fault_injector(&mut self, faults: FaultInjector) {
        self.faults = faults;
    }

    /// The attached fault injector (no-op by default).
    pub fn faults(&self) -> &FaultInjector {
        &self.faults
    }

    /// Disables control-queue isolation (ablation baseline: commands share
    /// the data queues).
    pub fn set_ctrl_isolated(&mut self, isolated: bool) {
        self.ctrl_isolated = isolated;
    }

    /// Whether the control queue is isolated.
    pub fn ctrl_isolated(&self) -> bool {
        self.ctrl_isolated
    }

    /// The underlying link model.
    pub fn link(&self) -> &PcieDmaIp {
        &self.dma
    }

    /// Queues `bytes` of data-path traffic (builds backlog).
    pub fn enqueue_data(&mut self, bytes: u64) {
        self.data_backlog_bytes += bytes;
        self.data_sent.record(bytes, 1);
    }

    /// Drains `bytes` of backlog (the device consumed them).
    pub fn drain_data(&mut self, bytes: u64) {
        self.data_backlog_bytes = self.data_backlog_bytes.saturating_sub(bytes);
    }

    /// Current data backlog in bytes.
    pub fn data_backlog(&self) -> u64 {
        self.data_backlog_bytes
    }

    /// Latency for a DMA data transfer of `bytes`.
    pub fn data_latency_ps(&self, bytes: u32) -> Picos {
        self.dma.read_latency_ps(bytes)
    }

    /// Data throughput for a given request size, GB/s.
    pub fn data_throughput_gbs(&self, request_bytes: u32) -> f64 {
        self.dma.throughput_gbs(request_bytes)
    }

    /// Delivery latency for a command packet of `cmd_bytes`.
    ///
    /// With isolation: link base latency plus the (tiny) serialization of
    /// the packet. Without: the command also waits for the data backlog to
    /// drain through the shared queue.
    pub fn command_latency_ps(&mut self, cmd_bytes: u32) -> Picos {
        self.commands_sent += 1;
        self.metrics.counter_inc("harmonia_dma_cmds_total", &[]);
        self.queue_latency_ps(cmd_bytes)
    }

    /// Control-queue wire latency for `bytes` (no send accounting).
    fn queue_latency_ps(&self, bytes: u32) -> Picos {
        let base = self.dma.read_latency_ps(bytes);
        if self.ctrl_isolated {
            base
        } else {
            let bw = self.dma.throughput_gbs(4096); // backlog drains at bulk rate
            let wait = (self.data_backlog_bytes as f64 / bw * 1e3) as Picos;
            base + wait
        }
    }

    /// Commands sent so far.
    pub fn commands_sent(&self) -> u64 {
        self.commands_sent
    }

    /// Doorbell bursts shipped via [`DmaEngine::batch_delivery`].
    pub fn doorbells(&self) -> u64 {
        self.doorbells
    }

    /// Ships one command through the fault plane at simulation time
    /// `now`: an injected PCIe credit stall stretches the latency; a
    /// down link or an injected drop loses the packet outright. With the
    /// no-op injector this is [`DmaEngine::command_latency_ps`] wrapped
    /// in [`CommandDelivery::Delivered`] — bit-identical timing.
    pub fn command_delivery(&mut self, cmd_bytes: u32, now: Picos) -> CommandDelivery {
        let mut latency_ps = self.command_latency_ps(cmd_bytes);
        if self.faults.is_active() {
            let stall = self.faults.take_stall_beats(now);
            if stall > 0 {
                latency_ps += stall * self.credit_beat_ps();
                self.metrics
                    .counter_inc("harmonia_dma_credit_stalls_total", &[]);
                self.metrics
                    .counter_add("harmonia_dma_credit_stall_beats_total", &[], stall);
                self.trace.instant(
                    now,
                    TraceEventKind::FaultInjected {
                        kind: FaultKind::PcieCreditStall { beats: stall },
                    },
                );
            }
            if !self.faults.link_up(now) || self.faults.drop_command(now) {
                self.trace.span(
                    now,
                    latency_ps,
                    TraceEventKind::CmdDelivery {
                        bytes: cmd_bytes,
                        lost: true,
                    },
                );
                return CommandDelivery::Lost { latency_ps };
            }
        }
        self.trace.span(
            now,
            latency_ps,
            TraceEventKind::CmdDelivery {
                bytes: cmd_bytes,
                lost: false,
            },
        );
        CommandDelivery::Delivered { latency_ps }
    }

    /// Ships one doorbell burst of `descriptors` command packets totalling
    /// `total_bytes` through the control queue: the whole chunk pays ONE
    /// base link latency instead of one per packet — the amortization the
    /// SQ/CQ path exists for.
    ///
    /// Burst-level faults apply here: an injected credit stall stretches
    /// the latency and a down link loses the entire burst. Per-descriptor
    /// `CmdDrop`/`CmdCorrupt` faults are *not* consulted — the batched
    /// driver applies those per entry, so replay recovers only the lost
    /// descriptors.
    pub fn batch_delivery(
        &mut self,
        total_bytes: u32,
        descriptors: u32,
        now: Picos,
    ) -> CommandDelivery {
        self.doorbells += 1;
        self.commands_sent += u64::from(descriptors);
        self.metrics.counter_inc("harmonia_dma_bursts_total", &[]);
        self.metrics
            .counter_add("harmonia_dma_cmds_total", &[], u64::from(descriptors));
        let mut latency_ps = self.queue_latency_ps(total_bytes);
        if self.faults.is_active() {
            let stall = self.faults.take_stall_beats(now);
            if stall > 0 {
                latency_ps += stall * self.credit_beat_ps();
                self.metrics
                    .counter_inc("harmonia_dma_credit_stalls_total", &[]);
                self.metrics
                    .counter_add("harmonia_dma_credit_stall_beats_total", &[], stall);
                self.trace.instant(
                    now,
                    TraceEventKind::FaultInjected {
                        kind: FaultKind::PcieCreditStall { beats: stall },
                    },
                );
            }
            if !self.faults.link_up(now) {
                self.trace.span(
                    now,
                    latency_ps,
                    TraceEventKind::CmdDelivery {
                        bytes: total_bytes,
                        lost: true,
                    },
                );
                return CommandDelivery::Lost { latency_ps };
            }
        }
        self.trace.span(
            now,
            latency_ps,
            TraceEventKind::CmdDelivery {
                bytes: total_bytes,
                lost: false,
            },
        );
        CommandDelivery::Delivered { latency_ps }
    }

    /// Wire time of one 32-byte credit beat at the bulk transfer rate —
    /// the unit an injected `PcieCreditStall` is priced in.
    fn credit_beat_ps(&self) -> Picos {
        let bw = self.dma.throughput_gbs(4096); // GB/s == B/ns
        (32.0 / bw * 1e3) as Picos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_hw::Vendor;

    fn engine() -> DmaEngine {
        DmaEngine::new(PcieDmaIp::new(Vendor::Xilinx, 4, 8))
    }

    #[test]
    fn isolated_commands_unaffected_by_backlog() {
        let mut e = engine();
        let quiet = e.command_latency_ps(64);
        e.enqueue_data(100_000_000); // 100 MB backlog
        let busy = e.command_latency_ps(64);
        assert_eq!(quiet, busy);
    }

    #[test]
    fn shared_queue_commands_wait_behind_data() {
        let mut e = engine();
        e.set_ctrl_isolated(false);
        let quiet = e.command_latency_ps(64);
        e.enqueue_data(100_000_000);
        let busy = e.command_latency_ps(64);
        assert!(
            busy > quiet * 100,
            "shared-queue latency {busy} ps barely above quiet {quiet} ps"
        );
    }

    #[test]
    fn backlog_drains() {
        let mut e = engine();
        e.enqueue_data(1000);
        e.drain_data(400);
        assert_eq!(e.data_backlog(), 600);
        e.drain_data(10_000);
        assert_eq!(e.data_backlog(), 0);
    }

    #[test]
    fn data_path_uses_link_model() {
        let e = engine();
        assert!(e.data_throughput_gbs(16384) > 10.0);
        assert!(e.data_latency_ps(16384) > e.data_latency_ps(1024));
    }

    #[test]
    fn command_counter() {
        let mut e = engine();
        e.command_latency_ps(64);
        e.command_latency_ps(64);
        assert_eq!(e.commands_sent(), 2);
    }

    #[test]
    fn faultless_delivery_matches_plain_latency() {
        let mut plain = engine();
        let mut faulty = engine();
        let expect = plain.command_latency_ps(64);
        assert_eq!(
            faulty.command_delivery(64, 0),
            CommandDelivery::Delivered { latency_ps: expect }
        );
    }

    #[test]
    fn batch_delivery_amortizes_base_latency() {
        let mut e = engine();
        let single = e.command_latency_ps(64);
        let burst = match e.batch_delivery(64 * 16, 16, 0) {
            CommandDelivery::Delivered { latency_ps } => latency_ps,
            lost => panic!("no faults attached: {lost:?}"),
        };
        assert!(
            burst < single * 8,
            "16-descriptor burst at {burst} ps is not amortized vs {single} ps/cmd"
        );
        assert_eq!(e.doorbells(), 1);
        assert_eq!(e.commands_sent(), 17);
    }

    #[test]
    fn batch_delivery_lost_only_on_burst_level_faults() {
        use harmonia_sim::{FaultKind, FaultPlan};
        let mut e = engine();
        e.set_fault_injector(
            FaultPlan::new()
                .at(0, FaultKind::CmdDrop)
                .at(100, FaultKind::LinkDown)
                .injector(),
        );
        // An armed per-descriptor drop must NOT lose the whole burst —
        // that consult belongs to the driver, per entry.
        assert!(matches!(
            e.batch_delivery(256, 4, 0),
            CommandDelivery::Delivered { .. }
        ));
        // A down link loses the burst outright.
        assert!(matches!(
            e.batch_delivery(256, 4, 150),
            CommandDelivery::Lost { .. }
        ));
    }

    #[test]
    fn stall_drop_and_link_faults_shape_delivery() {
        use harmonia_sim::{FaultKind, FaultPlan};
        let mut e = engine();
        e.set_fault_injector(
            FaultPlan::new()
                .at(0, FaultKind::PcieCreditStall { beats: 1000 })
                .at(100, FaultKind::CmdDrop)
                .at(200, FaultKind::LinkDown)
                .injector(),
        );
        let clean = engine().command_latency_ps(64);
        // Stall: delivered, but slower.
        match e.command_delivery(64, 0) {
            CommandDelivery::Delivered { latency_ps } => assert!(latency_ps > clean),
            lost => panic!("stall must not lose the packet: {lost:?}"),
        }
        // Armed drop: lost.
        assert!(matches!(
            e.command_delivery(64, 100),
            CommandDelivery::Lost { .. }
        ));
        // Link down: every packet lost until LinkUp.
        assert!(matches!(
            e.command_delivery(64, 250),
            CommandDelivery::Lost { .. }
        ));
        assert_eq!(e.faults().report().cmd_drops, 1);
    }
}
