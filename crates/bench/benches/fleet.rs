//! Cluster-scale fleet sweep: placement policy × fleet size, one kill
//! at the diurnal peak per point.
//!
//! Like `tenancy`, every number here is *simulated* time from the fleet
//! control plane, so the emitted `BENCH_fleet.json` is deterministic
//! and committable. The artifact lands in `TESTKIT_BENCH_DIR` (default
//! `target/testkit-bench`); `ci.sh` copies it to the repo root.

use harmonia_bench::fleet;
use std::path::PathBuf;

fn out_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("TESTKIT_BENCH_DIR") {
        return PathBuf::from(dir);
    }
    let start = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = start
        .ancestors()
        .filter(|a| a.join("Cargo.toml").is_file())
        .last()
        .unwrap_or(&start)
        .to_path_buf();
    root.join("target").join("testkit-bench")
}

fn main() {
    let points = fleet::sweep();
    for p in &points {
        println!(
            "fleet/{:<19} p99 {:>15} ps   p50 {:>13} ps   injected {:>11}   \
             migrated {:>7}   rebalance {:>3} ticks   replicas {:>3}",
            p.name(),
            p.p99_ps,
            p.p50_ps,
            p.injected,
            p.migrated,
            p.rebalance_ticks,
            p.replicas,
        );
    }
    let dir = out_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("[fleet] cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join("BENCH_fleet.json");
    match std::fs::write(&path, fleet::sweep_json(&points)) {
        Ok(()) => println!(
            "\n[fleet] sweep complete; JSON artifact at {}",
            path.display()
        ),
        Err(e) => eprintln!("[fleet] cannot write {}: {e}", path.display()),
    }
}
