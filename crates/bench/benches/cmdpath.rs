//! Batched command path: doorbell batch × SQ depth sweep.
//!
//! Unlike the wall-clock groups, every number here is *simulated* time
//! from the DMA/kernel models, so the emitted `BENCH_cmdpath.json` is
//! deterministic and committable. The artifact lands in
//! `TESTKIT_BENCH_DIR` (default `target/testkit-bench`) like the
//! testkit-harness groups; `ci.sh` copies it to the repo root.

use harmonia_bench::cmdpath;
use std::path::PathBuf;

fn out_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("TESTKIT_BENCH_DIR") {
        return PathBuf::from(dir);
    }
    let start = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = start
        .ancestors()
        .filter(|a| a.join("Cargo.toml").is_file())
        .last()
        .unwrap_or(&start)
        .to_path_buf();
    root.join("target").join("testkit-bench")
}

fn main() {
    let points = cmdpath::sweep();
    let baseline = points
        .iter()
        .find(|p| p.batch == 1 && p.depth == 64)
        .expect("sweep covers batch=1/depth=64")
        .sim_cmds_per_sec;
    for p in &points {
        println!(
            "cmdpath/{:<18} sim {:>12} ps   {:>12.1} cmds/s   ({:.2}x)   doorbells {:>3}   irqs {:>3}",
            p.name(),
            p.sim_ps,
            p.sim_cmds_per_sec,
            p.sim_cmds_per_sec / baseline,
            p.doorbells,
            p.interrupts,
        );
    }
    let dir = out_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("[cmdpath] cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join("BENCH_cmdpath.json");
    match std::fs::write(&path, cmdpath::sweep_json(&points)) {
        Ok(()) => println!("\n[cmdpath] sweep complete; JSON artifact at {}", path.display()),
        Err(e) => eprintln!("[cmdpath] cannot write {}: {e}", path.display()),
    }
}
