//! Micro-benches (harmonia-testkit harness) for the command interface: packet codec and unified
//! control kernel execution (the Figure 13 / Table 4 machinery).

use harmonia_testkit::bench::{Criterion, Throughput, black_box};
use harmonia_testkit::{bench_group, bench_main};
use harmonia::cmd::{CommandCode, CommandPacket, SrcId, UnifiedControlKernel};
use harmonia::host::reg_driver::RegisterDriver;
use harmonia::hw::device::catalog;
use harmonia::shell::{MemoryDemand, RoleSpec, TailoredShell, UnifiedShell};

fn table4_shell() -> TailoredShell {
    let unified = UnifiedShell::for_device(&catalog::device_a());
    let role = RoleSpec::builder("bench")
        .network_gbps(100)
        .network_ports(1)
        .memory(MemoryDemand::Ddr { channels: 1 })
        .queues(192)
        .build();
    TailoredShell::tailor(&unified, &role).expect("deploys")
}

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("packet_codec");
    let packet = CommandPacket::new(SrcId::Application, 1, 0, CommandCode::TableWrite)
        .with_data((0..16).collect());
    let bytes = packet.encode();
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("encode", |b| b.iter(|| black_box(packet.encode())));
    g.bench_function("decode", |b| {
        b.iter(|| black_box(CommandPacket::decode(&bytes).unwrap()))
    });
    g.finish();
}

fn bench_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("control_kernel");
    let shell = table4_shell();
    g.bench_function("module_init_command", |b| {
        b.iter(|| {
            let mut k = UnifiedControlKernel::new(16);
            k.attach_shell(shell.rbbs().iter().map(|r| r.as_ref()));
            k.submit(CommandPacket::new(
                SrcId::Application,
                1,
                0,
                CommandCode::ModuleInit,
            ))
            .unwrap();
            black_box(k.step().unwrap())
        })
    });
    g.bench_function("stats_read_command", |b| {
        let mut k = UnifiedControlKernel::new(16);
        k.attach_shell(shell.rbbs().iter().map(|r| r.as_ref()));
        b.iter(|| {
            k.submit(CommandPacket::new(
                SrcId::CtrlTool,
                1,
                0,
                CommandCode::StatsRead,
            ))
            .unwrap();
            black_box(k.step().unwrap())
        })
    });
    g.finish();
}

fn bench_reg_scripts(c: &mut Criterion) {
    let mut g = c.benchmark_group("register_scripts");
    let shell = table4_shell();
    let device = catalog::device_a();
    g.bench_function("full_init_script_generation", |b| {
        b.iter(|| black_box(RegisterDriver::full_init_script(&device, &shell).len()))
    });
    let a = RegisterDriver::full_init_script(&device, &shell);
    g.bench_function("script_lcs_diff", |b| {
        b.iter(|| black_box(harmonia::metrics::lcs_diff(&a, &a[..a.len() - 10])))
    });
    g.finish();
}

bench_group!(benches, bench_codec, bench_kernel, bench_reg_scripts);
bench_main!(benches);
