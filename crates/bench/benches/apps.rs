//! Micro-benches (harmonia-testkit harness) for the application role logic (Figure 17's kernels).

use harmonia_testkit::bench::{Criterion, Throughput, black_box};
use harmonia_testkit::{bench_group, bench_main};
use harmonia::apps::common::to_packet_meta;
use harmonia::apps::host_network::internet_checksum;
use harmonia::apps::l4lb::Backend;
use harmonia::apps::sec_gateway::{AclRule, Action};
use harmonia::apps::{Layer4Lb, RetrievalEngine, SecGateway};
use harmonia::workloads::{MatMulWorkload, PacketGen};

const LOCAL_MAC: u64 = 0x02_00_00_00_00_01;

fn bench_sec_gateway(c: &mut Criterion) {
    let mut g = c.benchmark_group("sec_gateway");
    let mut gw = SecGateway::new(Action::Allow);
    for i in 0..512u32 {
        gw.install_rule(AclRule {
            src: (i << 20, 12),
            dst: (0, 0),
            dst_port: Some(443),
            proto: Some(6),
            priority: i as u16,
            action: if i % 2 == 0 { Action::Deny } else { Action::Allow },
        })
        .unwrap();
    }
    let pkts: Vec<_> = PacketGen::new(4, LOCAL_MAC)
        .fixed_size(64, 10_000)
        .iter()
        .map(to_packet_meta)
        .collect();
    g.throughput(Throughput::Elements(pkts.len() as u64));
    g.bench_function("classify_10k_against_512_rules", |b| {
        b.iter(|| {
            let mut denied = 0u32;
            for p in &pkts {
                if gw.classify(p) == Action::Deny {
                    denied += 1;
                }
            }
            black_box(denied)
        })
    });
    g.finish();
}

fn bench_l4lb(c: &mut Criterion) {
    let mut g = c.benchmark_group("l4lb");
    let pkts: Vec<_> = PacketGen::new(5, LOCAL_MAC)
        .with_flows(2_000)
        .fixed_size(64, 10_000)
        .iter()
        .map(to_packet_meta)
        .collect();
    g.throughput(Throughput::Elements(pkts.len() as u64));
    g.bench_function("dispatch_10k_packets", |b| {
        b.iter(|| {
            let mut lb = Layer4Lb::new(
                (0..16).map(|id| Backend { id, weight: 1 }).collect(),
                100_000,
            );
            let mut hits = 0u32;
            for p in &pkts {
                if lb.dispatch(p).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    g.finish();
}

fn bench_checksum(c: &mut Criterion) {
    let mut g = c.benchmark_group("checksum");
    let payload: Vec<u8> = (0..1500).map(|i| (i % 251) as u8).collect();
    g.throughput(Throughput::Bytes(payload.len() as u64));
    g.bench_function("rfc1071_1500B", |b| {
        b.iter(|| black_box(internet_checksum(&payload)))
    });
    g.finish();
}

fn bench_retrieval(c: &mut Criterion) {
    let mut g = c.benchmark_group("retrieval");
    g.sample_size(20);
    let engine = RetrievalEngine::synthetic(9, 10_000, 64);
    let query: Vec<f32> = (0..64).map(|i| (i as f32 * 0.21).cos()).collect();
    g.throughput(Throughput::Elements(engine.items()));
    g.bench_function("top64_of_10k", |b| {
        b.iter(|| black_box(engine.top_k(&query, 64).len()))
    });
    g.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul");
    g.sample_size(20);
    let w = MatMulWorkload::paper();
    let a: Vec<f32> = (0..64 * 64).map(|i| (i % 97) as f32 / 97.0).collect();
    let bm: Vec<f32> = (0..64 * 64).map(|i| (i % 89) as f32 / 89.0).collect();
    g.bench_function("multiply_64x64", |b| {
        b.iter(|| black_box(w.multiply(&a, &bm)[0]))
    });
    g.finish();
}

fn bench_compression(c: &mut Criterion) {
    use harmonia::apps::StorageOffload;
    let mut g = c.benchmark_group("storage_offload");
    let text: Vec<u8> = include_str!("../src/fig18.rs")
        .as_bytes()
        .repeat(8);
    g.throughput(Throughput::Bytes(text.len() as u64));
    g.bench_function("lz_compress_source_text", |b| {
        b.iter(|| {
            let mut eng = StorageOffload::new();
            black_box(eng.compress(&text).len())
        })
    });
    let packed = StorageOffload::new().compress(&text);
    g.throughput(Throughput::Bytes(packed.len() as u64));
    g.bench_function("lz_decompress", |b| {
        let eng = StorageOffload::new();
        b.iter(|| black_box(eng.decompress(&packed).unwrap().len()))
    });
    g.finish();
}

bench_group!(
    benches,
    bench_sec_gateway,
    bench_l4lb,
    bench_checksum,
    bench_retrieval,
    bench_matmul,
    bench_compression
);
bench_main!(benches);
