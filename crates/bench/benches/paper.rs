//! Serial vs parallel timing of the full paper regeneration, under both
//! simulation engines.
//!
//! Measures `all_tables()` (every figure/table generator) with the worker
//! pool pinned to one thread and with the hardware default, and with
//! `HARMONIA_ENGINE` at its cycle-stepped default and at `event`, so the
//! committed `BENCH_paper.json` records what the execution layer and the
//! skip-ahead scheduler buy on the build machine.
//! `TESTKIT_BENCH_SMOKE=1` trims sampling for CI.

use harmonia::sim::exec::THREADS_ENV;
use harmonia::sim::ENGINE_ENV;
use harmonia_testkit::bench::{black_box, Criterion};
use harmonia_testkit::{bench_group, bench_main};

fn with_env<R>(key: &str, value: Option<&str>, f: impl FnOnce() -> R) -> R {
    let prior = std::env::var(key).ok();
    match value {
        Some(v) => std::env::set_var(key, v),
        None => std::env::remove_var(key),
    }
    let out = f();
    match prior {
        Some(v) => std::env::set_var(key, v),
        None => std::env::remove_var(key),
    }
    out
}

fn with_knobs<R>(threads: Option<&str>, engine: Option<&str>, f: impl FnOnce() -> R) -> R {
    with_env(THREADS_ENV, threads, || with_env(ENGINE_ENV, engine, f))
}

/// One untimed sweep before sampling: the first sweep under a fresh knob
/// configuration pays pool spin-up and cold caches, which used to land
/// in the timed window and skew the committed p99 (a lone ~80 ms outlier
/// against a ~58 ms median for `full_sweep_event_parallel`).
fn warmed(b: &mut harmonia_testkit::bench::Bencher) {
    black_box(harmonia_bench::all_tables().len());
    b.iter(|| black_box(harmonia_bench::all_tables().len()))
}

fn bench_paper(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper");
    // Enough samples that one scheduling hiccup cannot own the p99.
    g.sample_size(20);
    g.bench_function("full_sweep_serial", |b| {
        with_knobs(Some("1"), Some("cycle"), || warmed(b))
    });
    g.bench_function("full_sweep_parallel", |b| {
        with_knobs(None, Some("cycle"), || warmed(b))
    });
    g.bench_function("full_sweep_event_serial", |b| {
        with_knobs(Some("1"), Some("event"), || warmed(b))
    });
    g.bench_function("full_sweep_event_parallel", |b| {
        with_knobs(None, Some("event"), || warmed(b))
    });
    g.finish();
}

bench_group!(benches, bench_paper);
bench_main!(benches);
