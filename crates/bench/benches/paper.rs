//! Serial vs parallel timing of the full paper regeneration.
//!
//! Measures `all_tables()` (every figure/table generator) with the worker
//! pool pinned to one thread and with the hardware default, so the
//! committed `BENCH_paper.json` records what the execution layer buys on
//! the build machine. `TESTKIT_BENCH_SMOKE=1` trims sampling for CI.

use harmonia_testkit::bench::{black_box, Criterion};
use harmonia_testkit::{bench_group, bench_main};

fn with_threads<R>(value: Option<&str>, f: impl FnOnce() -> R) -> R {
    let prior = std::env::var(harmonia::sim::exec::THREADS_ENV).ok();
    match value {
        Some(v) => std::env::set_var(harmonia::sim::exec::THREADS_ENV, v),
        None => std::env::remove_var(harmonia::sim::exec::THREADS_ENV),
    }
    let out = f();
    match prior {
        Some(v) => std::env::set_var(harmonia::sim::exec::THREADS_ENV, v),
        None => std::env::remove_var(harmonia::sim::exec::THREADS_ENV),
    }
    out
}

fn bench_paper(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);
    g.bench_function("full_sweep_serial", |b| {
        with_threads(Some("1"), || {
            b.iter(|| black_box(harmonia_bench::all_tables().len()))
        })
    });
    g.bench_function("full_sweep_parallel", |b| {
        with_threads(None, || {
            b.iter(|| black_box(harmonia_bench::all_tables().len()))
        })
    });
    g.finish();
}

bench_group!(benches, bench_paper);
bench_main!(benches);
