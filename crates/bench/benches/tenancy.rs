//! Multi-tenant noisy neighbor: policy × tenant-count sweep.
//!
//! Like `cmdpath`, every number here is *simulated* time from the
//! tenancy models, so the emitted `BENCH_tenancy.json` is deterministic
//! and committable. The artifact lands in `TESTKIT_BENCH_DIR` (default
//! `target/testkit-bench`); `ci.sh` copies it to the repo root.

use harmonia_bench::tenancy;
use std::path::PathBuf;

fn out_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("TESTKIT_BENCH_DIR") {
        return PathBuf::from(dir);
    }
    let start = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = start
        .ancestors()
        .filter(|a| a.join("Cargo.toml").is_file())
        .last()
        .unwrap_or(&start)
        .to_path_buf();
    root.join("target").join("testkit-bench")
}

fn main() {
    let points = tenancy::sweep();
    for p in &points {
        println!(
            "tenancy/{:<14} victim p99 {:>13} ps   solo {:>9} ps   ({:>8.2}x)   \
             slices {:>3}   switches {:>3}   quota {:>3}",
            p.name(),
            p.victim_p99_ps,
            p.victim_solo_p99_ps,
            p.p99_ratio,
            p.victim_slices,
            p.switches,
            p.quota_exhausted,
        );
    }
    let dir = out_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("[tenancy] cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join("BENCH_tenancy.json");
    match std::fs::write(&path, tenancy::sweep_json(&points)) {
        Ok(()) => println!(
            "\n[tenancy] sweep complete; JSON artifact at {}",
            path.display()
        ),
        Err(e) => eprintln!("[tenancy] cannot write {}: {e}", path.display()),
    }
}
