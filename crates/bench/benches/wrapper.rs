//! Micro-benches (harmonia-testkit harness) for the platform-specific layer: width conversion,
//! clock-domain crossing and the vendor IP timing models (Figure 10's
//! machinery).

use harmonia_testkit::bench::{Criterion, Throughput, black_box};
use harmonia_testkit::{bench_group, bench_main};
use harmonia::hw::ip::{DdrIp, MacIp, PcieDmaIp};
use harmonia::hw::Vendor;
use harmonia::platform::WidthConverter;
use harmonia::shell::ParamCdc;
use harmonia::sim::stream::packet_to_beats;
use harmonia::sim::Freq;
use harmonia::workloads::{AccessPattern, MemTraceGen};

fn bench_width_converter(c: &mut Criterion) {
    let mut g = c.benchmark_group("width_converter");
    let beats = packet_to_beats(1500, 512);
    g.throughput(Throughput::Bytes(1500));
    g.bench_function("512_to_128_per_1500B_packet", |b| {
        b.iter(|| {
            let mut conv = WidthConverter::new(512, 128);
            for beat in &beats {
                conv.push(*beat);
            }
            black_box(conv.drain().len())
        })
    });
    g.bench_function("512_to_512_per_1500B_packet", |b| {
        b.iter(|| {
            let mut conv = WidthConverter::new(512, 512);
            for beat in &beats {
                conv.push(*beat);
            }
            black_box(conv.drain().len())
        })
    });
    g.finish();
}

fn bench_cdc(c: &mut Criterion) {
    let mut g = c.benchmark_group("param_cdc");
    g.sample_size(20);
    g.bench_function("matched_100us_window", |b| {
        let cdc = ParamCdc::new(Freq::mhz(100), 512, Freq::mhz(400), 128, 32);
        b.iter(|| black_box(cdc.simulate(100_000_000)).delivered)
    });
    g.finish();
}

fn bench_ip_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("ip_models");
    g.bench_function("mac_throughput_sweep", |b| {
        let mac = MacIp::new(Vendor::Xilinx, 100);
        b.iter(|| {
            let mut acc = 0.0;
            for s in [64u32, 128, 256, 512, 1024, 1500] {
                acc += mac.throughput_gbps(black_box(s));
            }
            black_box(acc)
        })
    });
    g.bench_function("pcie_latency_sweep", |b| {
        let dma = PcieDmaIp::new(Vendor::Intel, 4, 16);
        b.iter(|| {
            let mut acc = 0u64;
            for s in [1024u32, 4096, 16384] {
                acc += dma.read_latency_ps(black_box(s));
            }
            black_box(acc)
        })
    });
    g.sample_size(20);
    g.bench_function("ddr_random_trace_10k", |b| {
        let ops = MemTraceGen::new(5).trace(AccessPattern::Random, false, 64, 10_000);
        b.iter(|| {
            let mut ch = DdrIp::new(Vendor::Xilinx, 4).channel();
            black_box(ch.run_trace(ops.iter().copied()))
        })
    });
    g.finish();
}

bench_group!(benches, bench_width_converter, bench_cdc, bench_ip_models);
bench_main!(benches);
