//! Micro-bench timing of the figure generators themselves — one bench per
//! paper table/figure family, so `cargo bench` regenerates every artifact
//! under measurement.

use harmonia_testkit::bench::{Criterion, black_box};
use harmonia_testkit::{bench_group, bench_main};

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig03_motivation", |b| {
        b.iter(|| black_box(harmonia_bench::fig03::generate().len()))
    });
    g.bench_function("fig10_wrapper_micro", |b| {
        b.iter(|| black_box(harmonia_bench::fig10::generate().len()))
    });
    g.bench_function("fig11_tailoring_resources", |b| {
        b.iter(|| black_box(harmonia_bench::fig11::generate().len()))
    });
    g.bench_function("fig12_config_reduction", |b| {
        b.iter(|| black_box(harmonia_bench::fig12::generate().len()))
    });
    g.bench_function("fig13_migration", |b| {
        b.iter(|| black_box(harmonia_bench::fig13::generate().len()))
    });
    g.bench_function("fig14_rbb_reuse", |b| {
        b.iter(|| black_box(harmonia_bench::fig14::generate().len()))
    });
    g.bench_function("fig15_app_reuse", |b| {
        b.iter(|| black_box(harmonia_bench::fig15::generate().len()))
    });
    g.bench_function("fig16_overhead", |b| {
        b.iter(|| black_box(harmonia_bench::fig16::generate().len()))
    });
    g.bench_function("fig17_app_perf", |b| {
        b.iter(|| black_box(harmonia_bench::fig17::generate().len()))
    });
    g.bench_function("fig18_frameworks", |b| {
        b.iter(|| black_box(harmonia_bench::fig18::generate().len()))
    });
    g.bench_function("tables_1_3_4", |b| {
        b.iter(|| black_box(harmonia_bench::tables::generate().len()))
    });
    g.bench_function("ablations", |b| {
        b.iter(|| black_box(harmonia_bench::ablation::generate().len()))
    });
    g.finish();
}

bench_group!(benches, bench_figures);
bench_main!(benches);
