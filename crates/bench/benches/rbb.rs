//! Micro-benches (harmonia-testkit harness) for the Reusable Building Blocks: packet filtering +
//! flow direction, queue scheduling, and the memory system with its
//! ex-functions on and off (the ablation's timing side).

use harmonia_testkit::bench::{BenchmarkId, Criterion, Throughput, black_box};
use harmonia_testkit::{bench_group, bench_main};
use harmonia::apps::common::to_packet_meta;
use harmonia::hw::Vendor;
use harmonia::shell::rbb::{HostRbb, MemoryRbb, NetworkRbb};
use harmonia::workloads::{AccessPattern, MemTraceGen, PacketGen};

const LOCAL_MAC: u64 = 0x02_11_22_33_44_55;

fn bench_network_rbb(c: &mut Criterion) {
    let mut g = c.benchmark_group("network_rbb");
    let pkts: Vec<_> = PacketGen::new(1, LOCAL_MAC)
        .with_foreign_traffic(64, 10_000, 0.2)
        .iter()
        .map(to_packet_meta)
        .collect();
    g.throughput(Throughput::Elements(pkts.len() as u64));
    g.bench_function("filter_and_direct_10k_packets", |b| {
        b.iter(|| {
            let mut rbb = NetworkRbb::with_speed(Vendor::Xilinx, 100, 256);
            rbb.add_local_mac(LOCAL_MAC);
            for p in &pkts {
                black_box(rbb.process_rx(p));
            }
            rbb.stats().rx_packets
        })
    });
    g.finish();
}

fn bench_host_rbb(c: &mut Criterion) {
    let mut g = c.benchmark_group("host_rbb");
    for &active in &[4u16, 64] {
        g.bench_with_input(
            BenchmarkId::new("active_ring_schedule", active),
            &active,
            |b, &active| {
                b.iter(|| {
                    let mut h = HostRbb::with_link(Vendor::Xilinx, 4, 8);
                    for q in 0..active {
                        h.activate(q * 3).unwrap();
                        for _ in 0..8 {
                            h.enqueue(q * 3, 64).unwrap();
                        }
                    }
                    let mut n = 0u32;
                    while h.schedule().is_some() {
                        n += 1;
                    }
                    black_box(n)
                })
            },
        );
    }
    g.finish();
}

fn bench_memory_rbb(c: &mut Criterion) {
    let mut g = c.benchmark_group("memory_rbb");
    g.sample_size(20);
    let seq = MemTraceGen::new(2).trace(AccessPattern::Sequential, false, 64, 20_000);
    let rnd = MemTraceGen::new(2).trace(AccessPattern::Random, false, 64, 20_000);
    for (name, trace, cache) in [
        ("seq_cache_on", &seq, true),
        ("seq_cache_off", &seq, false),
        ("rand_cache_off", &rnd, false),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut mem = MemoryRbb::ddr(Vendor::Xilinx, 4, 2);
                mem.set_cache(cache);
                black_box(mem.run_trace(trace.iter().copied()))
            })
        });
    }
    g.finish();
}

fn bench_rdma(c: &mut Criterion) {
    use harmonia::shell::rbb::rdma::{QueuePair, RdmaConfig};
    use harmonia::sim::SplitMix64;
    let mut g = c.benchmark_group("rdma");
    g.sample_size(20);
    for (name, loss) in [("lossless", 0.0), ("loss_5pct", 0.05)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut qp = QueuePair::new(RdmaConfig::default());
                for _ in 0..64 {
                    qp.post_send(8192).unwrap();
                }
                let mut rng = SplitMix64::new(9);
                black_box(qp.run_to_completion(&mut rng, loss, 1_000_000).unwrap())
            })
        });
    }
    g.finish();
}

bench_group!(
    benches,
    bench_network_rbb,
    bench_host_rbb,
    bench_memory_rbb,
    bench_rdma
);
bench_main!(benches);
