//! The execution layer's determinism contract, end to end: every paper
//! artifact must render byte-identically whether the worker pool runs
//! serial or wide, and property failures must reproduce the same seed at
//! any thread count.

use harmonia::sim::exec::THREADS_ENV;
use harmonia_testkit::runner::{Config, Outcome, Runner, DEFAULT_SHRINK_BUDGET};
use std::sync::Mutex;

/// Env mutations are process-global; serialize the tests that flip
/// `HARMONIA_THREADS` so cargo's parallel test runner can't interleave
/// them.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<R>(value: Option<&str>, f: impl FnOnce() -> R) -> R {
    let _guard = ENV_LOCK.lock().unwrap();
    let prior = std::env::var(THREADS_ENV).ok();
    match value {
        Some(v) => std::env::set_var(THREADS_ENV, v),
        None => std::env::remove_var(THREADS_ENV),
    }
    let out = f();
    match prior {
        Some(v) => std::env::set_var(THREADS_ENV, v),
        None => std::env::remove_var(THREADS_ENV),
    }
    out
}

fn rendered_at(threads: &str, table: impl Fn() -> harmonia::metrics::Table) -> String {
    with_threads(Some(threads), || table().to_string())
}

#[test]
fn fig10a_byte_identical_serial_vs_parallel() {
    let serial = rendered_at("1", harmonia_bench::fig10::fig10a);
    let parallel = rendered_at("4", harmonia_bench::fig10::fig10a);
    assert_eq!(serial, parallel);
}

#[test]
fn fig17d_byte_identical_serial_vs_parallel() {
    let serial = rendered_at("1", harmonia_bench::fig17::fig17d);
    let parallel = rendered_at("4", harmonia_bench::fig17::fig17d);
    assert_eq!(serial, parallel);
}

#[test]
fn fig18_byte_identical_serial_vs_parallel() {
    let render = || {
        harmonia_bench::fig18::generate()
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    };
    let serial = with_threads(Some("1"), render);
    let parallel = with_threads(Some("4"), render);
    assert_eq!(serial, parallel);
}

#[test]
fn full_paper_output_byte_identical_serial_vs_parallel() {
    let render = || {
        harmonia_bench::all_tables()
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    };
    let serial = with_threads(Some("1"), render);
    let parallel = with_threads(Some("4"), render);
    assert_eq!(serial, parallel);
}

/// One self-contained fault campaign: a seeded plan mixing scheduled
/// link-flap + credit-stall events with background drop/corrupt/irq-lost
/// rates, driven through the resilient bring-up + monitoring workflow.
/// Returns a rendered transcript (driver report, ack order, fault
/// counters) for byte-exact comparison.
fn fault_campaign(seed: u64) -> String {
    use harmonia::cmd::{CommandCode, UnifiedControlKernel};
    use harmonia::host::{CommandDriver, DmaEngine, DriverError};
    use harmonia::hw::device::catalog;
    use harmonia::hw::ip::PcieDmaIp;
    use harmonia::hw::Vendor;
    use harmonia::shell::{MemoryDemand, RoleSpec, TailoredShell, UnifiedShell};
    use harmonia::sim::{FaultKind, FaultPlan, FaultRates};

    let dev = catalog::device_a();
    let unified = UnifiedShell::for_device(&dev);
    let role = RoleSpec::builder("campaign")
        .network_gbps(100)
        .network_ports(1)
        .memory(MemoryDemand::Ddr { channels: 1 })
        .build();
    let mut shell = TailoredShell::tailor(&unified, &role).unwrap();
    let mut kernel = UnifiedControlKernel::new(64);
    kernel.attach_shell(shell.rbbs().iter().map(|r| r.as_ref()));
    let (gen, lanes) = dev.pcie().unwrap();
    let mut drv = CommandDriver::new(
        DmaEngine::new(PcieDmaIp::new(Vendor::Xilinx, gen, lanes)),
        kernel,
    );
    let plan = FaultPlan::new()
        .at(0, FaultKind::LinkDown)
        .at(30_000_000, FaultKind::LinkUp)
        .at(50_000_000, FaultKind::PcieCreditStall { beats: 1_000 })
        .with_rates(
            seed,
            FaultRates {
                cmd_drop: 0.05,
                cmd_corrupt: 0.05,
                irq_lost: 0.05,
                ecc: 0.0,
            },
        );
    let inj = plan.injector();
    drv.set_fault_injector(inj.clone());
    drv.init_shell_resilient(&mut shell).unwrap();
    for _ in 0..16 {
        match drv.cmd_raw_resilient(0, 0, CommandCode::HealthRead, Vec::new()) {
            Ok(_) | Err(DriverError::GaveUp { .. }) => {}
            Err(e) => panic!("campaign must converge, got {e}"),
        }
    }
    let _ = drv.read_all_stats_resilient(&shell).unwrap();
    assert!(drv.report().converged(), "seed {seed}: {}", drv.report());
    format!(
        "seed={seed} {} acked={:?} {}",
        drv.report(),
        drv.acked_log(),
        inj.report()
    )
}

/// The same seeded fault plans produce byte-identical driver reports no
/// matter how wide the worker pool runs the campaign fleet.
#[test]
fn fault_campaign_reports_byte_identical_serial_vs_parallel() {
    let run = || harmonia::sim::exec::par_map(0u64..8, fault_campaign).join("\n");
    let serial = with_threads(Some("1"), run);
    let parallel = with_threads(Some("4"), run);
    assert_eq!(serial, parallel);
    assert_eq!(serial.lines().count(), 8, "one transcript per seed");
    // The campaigns actually exercised the fault plane: the scheduled
    // link-down alone forces retries on the first bring-up command.
    assert!(serial.contains("retries="), "{serial}");
    assert!(
        !serial.contains("retries=0 timeouts=0 nacks=0 gave-up=0"),
        "no campaign observed any fault:\n{serial}"
    );
}

/// A property that fails on a slice of the input space, run at several
/// thread counts: each run must stop on the same failing seed, minimal
/// counterexample, and shrink tape (no env needed — `Config.threads`
/// drives the pool directly).
#[test]
fn forall_failure_reproduces_identically_at_any_thread_count() {
    let outcome_at = |threads: usize| {
        let runner = Runner::new("equivalence_probe").with_config(Config {
            cases: 64,
            seed: 0xDEC0DE,
            shrink_budget: DEFAULT_SHRINK_BUDGET,
            persist: false,
            threads,
        });
        let outcome = runner.run_parallel(
            |src| src.draw_below(10_001),
            |&v| {
                if v >= 7_000 {
                    Err(harmonia_testkit::runner::CaseError::fail("too large"))
                } else {
                    Ok(())
                }
            },
        );
        match outcome {
            Outcome::Failed {
                minimal,
                tape,
                seed,
                error,
                ..
            } => (minimal, tape, seed, error),
            Outcome::Passed { .. } => panic!("probe property must fail"),
        }
    };
    let serial = outcome_at(1);
    for threads in [2, 4, 8] {
        assert_eq!(serial, outcome_at(threads), "divergence at {threads} threads");
    }
    assert_eq!(serial.0, 7_000, "shrinker should reach the boundary");
}
