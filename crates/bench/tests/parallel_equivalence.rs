//! The execution layer's determinism contract, end to end: every paper
//! artifact must render byte-identically whether the worker pool runs
//! serial or wide, and property failures must reproduce the same seed at
//! any thread count.

use harmonia::sim::exec::THREADS_ENV;
use harmonia_testkit::runner::{Config, Outcome, Runner, DEFAULT_SHRINK_BUDGET};
use std::sync::Mutex;

/// Env mutations are process-global; serialize the tests that flip
/// `HARMONIA_THREADS` so cargo's parallel test runner can't interleave
/// them.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<R>(value: Option<&str>, f: impl FnOnce() -> R) -> R {
    let _guard = ENV_LOCK.lock().unwrap();
    let prior = std::env::var(THREADS_ENV).ok();
    match value {
        Some(v) => std::env::set_var(THREADS_ENV, v),
        None => std::env::remove_var(THREADS_ENV),
    }
    let out = f();
    match prior {
        Some(v) => std::env::set_var(THREADS_ENV, v),
        None => std::env::remove_var(THREADS_ENV),
    }
    out
}

fn rendered_at(threads: &str, table: impl Fn() -> harmonia::metrics::Table) -> String {
    with_threads(Some(threads), || table().to_string())
}

#[test]
fn fig10a_byte_identical_serial_vs_parallel() {
    let serial = rendered_at("1", harmonia_bench::fig10::fig10a);
    let parallel = rendered_at("4", harmonia_bench::fig10::fig10a);
    assert_eq!(serial, parallel);
}

#[test]
fn fig17d_byte_identical_serial_vs_parallel() {
    let serial = rendered_at("1", harmonia_bench::fig17::fig17d);
    let parallel = rendered_at("4", harmonia_bench::fig17::fig17d);
    assert_eq!(serial, parallel);
}

#[test]
fn fig18_byte_identical_serial_vs_parallel() {
    let render = || {
        harmonia_bench::fig18::generate()
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    };
    let serial = with_threads(Some("1"), render);
    let parallel = with_threads(Some("4"), render);
    assert_eq!(serial, parallel);
}

#[test]
fn full_paper_output_byte_identical_serial_vs_parallel() {
    let render = || {
        harmonia_bench::all_tables()
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    };
    let serial = with_threads(Some("1"), render);
    let parallel = with_threads(Some("4"), render);
    assert_eq!(serial, parallel);
}

/// A property that fails on a slice of the input space, run at several
/// thread counts: each run must stop on the same failing seed, minimal
/// counterexample, and shrink tape (no env needed — `Config.threads`
/// drives the pool directly).
#[test]
fn forall_failure_reproduces_identically_at_any_thread_count() {
    let outcome_at = |threads: usize| {
        let runner = Runner::new("equivalence_probe").with_config(Config {
            cases: 64,
            seed: 0xDEC0DE,
            shrink_budget: DEFAULT_SHRINK_BUDGET,
            persist: false,
            threads,
        });
        let outcome = runner.run_parallel(
            |src| src.draw_below(10_001),
            |&v| {
                if v >= 7_000 {
                    Err(harmonia_testkit::runner::CaseError::fail("too large"))
                } else {
                    Ok(())
                }
            },
        );
        match outcome {
            Outcome::Failed {
                minimal,
                tape,
                seed,
                error,
                ..
            } => (minimal, tape, seed, error),
            Outcome::Passed { .. } => panic!("probe property must fail"),
        }
    };
    let serial = outcome_at(1);
    for threads in [2, 4, 8] {
        assert_eq!(serial, outcome_at(threads), "divergence at {threads} threads");
    }
    assert_eq!(serial.0, 7_000, "shrinker should reach the boundary");
}
