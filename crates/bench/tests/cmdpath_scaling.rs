//! Scaling and isolation contracts for the batched command path.
//!
//! 1. **Live ≥ 2×** — re-running the sweep in-process, batch=16 must move
//!    at least twice as many simulated commands per second as batch=1.
//! 2. **Committed artifact** — the repo-root `BENCH_cmdpath.json` (all
//!    simulated, hence byte-stable) shows the same speedup; drift means
//!    the artifact was not regenerated after a command-path change.
//! 3. **Snapshot isolation** — enabling batching via `HARMONIA_CMD_BATCH`
//!    must not move a byte of the committed paper snapshot, at any
//!    engine/thread matrix point: the paper generators never consult the
//!    knob, and the knob must never leak into their models.

use harmonia::sim::exec::THREADS_ENV;
use harmonia::sim::ENGINE_ENV;
use harmonia::host::CMD_BATCH_ENV;
use harmonia_bench::cmdpath;
use std::sync::Mutex;

/// Env mutations are process-global; serialize against cargo's parallel
/// test runner (this file's own lock — other test binaries run in other
/// processes).
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_env<R>(pairs: &[(&str, Option<&str>)], f: impl FnOnce() -> R) -> R {
    let _guard = ENV_LOCK.lock().unwrap();
    let priors: Vec<_> = pairs
        .iter()
        .map(|(k, _)| (*k, std::env::var(k).ok()))
        .collect();
    let set = |key: &str, value: Option<&str>| match value {
        Some(v) => std::env::set_var(key, v),
        None => std::env::remove_var(key),
    };
    for (k, v) in pairs {
        set(k, *v);
    }
    let out = f();
    for (k, v) in priors {
        set(k, v.as_deref());
    }
    out
}

#[test]
fn batch_16_doubles_simulated_throughput_live() {
    let serial = cmdpath::run_point(1, 64);
    let batched = cmdpath::run_point(16, 64);
    assert_eq!(serial.commands, batched.commands);
    assert!(
        batched.sim_cmds_per_sec >= 2.0 * serial.sim_cmds_per_sec,
        "batch=16 at {:.1} cmds/s is under 2x batch=1 at {:.1} cmds/s",
        batched.sim_cmds_per_sec,
        serial.sim_cmds_per_sec
    );
    // Doorbell batching is where the speedup comes from: one burst per
    // full batch instead of one delivery per command.
    assert_eq!(batched.doorbells, (batched.commands / 16) as u64);
    assert_eq!(serial.doorbells, 0);
}

#[test]
fn doorbells_track_commands_per_batch() {
    // The doorbells field is sourced from the metrics registry
    // (`harmonia_dma_bursts_total`); it must equal commands / effective
    // batch, where the SQ depth caps the effective batch size.
    for &batch in &cmdpath::BATCHES {
        for &depth in &cmdpath::DEPTHS {
            let p = cmdpath::run_point(batch, depth);
            let expected = if batch == 1 {
                0 // legacy serial path: no doorbell bursts at all
            } else {
                (p.commands / batch.min(depth)) as u64
            };
            assert_eq!(
                p.doorbells, expected,
                "batch={batch}/depth={depth}: {} doorbells for {} commands",
                p.doorbells, p.commands
            );
        }
    }
}

#[test]
fn committed_bench_shows_batch_16_at_least_twice_batch_1() {
    let committed = include_str!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_cmdpath.json"
    ));
    let serial = cmdpath::rate_from_json(committed, "batch=1/depth=64")
        .expect("committed artifact carries batch=1/depth=64");
    let batched = cmdpath::rate_from_json(committed, "batch=16/depth=64")
        .expect("committed artifact carries batch=16/depth=64");
    assert!(
        batched >= 2.0 * serial,
        "committed artifact shows only {batched:.1} vs {serial:.1} cmds/s"
    );
    // The committed numbers are simulated, so a fresh sweep must
    // reproduce them exactly; drift means the artifact is stale.
    let fresh = cmdpath::sweep();
    let rendered = cmdpath::sweep_json(&fresh);
    assert_eq!(
        rendered, committed,
        "BENCH_cmdpath.json is stale; regenerate with:\n\
         cargo bench --bench cmdpath && cp target/testkit-bench/BENCH_cmdpath.json ."
    );
}

#[test]
fn paper_snapshot_is_byte_identical_with_batching_enabled() {
    let committed = include_str!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../paper_output.txt"
    ));
    for (engine, threads) in [("cycle", "1"), ("cycle", "4"), ("event", "1"), ("event", "4")] {
        let rendered = with_env(
            &[
                (CMD_BATCH_ENV, Some("16")),
                (ENGINE_ENV, Some(engine)),
                (THREADS_ENV, Some(threads)),
            ],
            || {
                harmonia_bench::all_tables()
                    .iter()
                    .map(|t| format!("{t}\n"))
                    .collect::<String>()
            },
        );
        assert_eq!(
            rendered, committed,
            "HARMONIA_CMD_BATCH=16 moved the paper snapshot at \
             engine={engine} threads={threads}"
        );
    }
}
