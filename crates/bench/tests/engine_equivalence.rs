//! The simulation engine's determinism contract, end to end: every paper
//! artifact, trace export and fault-campaign transcript must render
//! byte-identically whether `HARMONIA_ENGINE` selects the cycle-stepped
//! reference or the event-driven scheduler, at any worker-pool width.
//!
//! This is the differential harness the event engine is developed
//! against: the cycle engine is the behavioral reference (pinned to
//! `paper_output.txt` by `paper_snapshot`), and the matrix below walks
//! {cycle, event} x {1 thread, 4 threads} asserting byte equality of
//! everything the repo publishes.

use harmonia::sim::exec::THREADS_ENV;
use harmonia::sim::{Engine, ENGINE_ENV};
use std::sync::Mutex;

/// Env mutations are process-global; serialize the tests that flip
/// `HARMONIA_THREADS` / `HARMONIA_ENGINE` so cargo's parallel test
/// runner can't interleave them.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with both knobs pinned, restoring the prior values after.
fn with_knobs<R>(threads: Option<&str>, engine: Option<&str>, f: impl FnOnce() -> R) -> R {
    let _guard = ENV_LOCK.lock().unwrap();
    let prior_threads = std::env::var(THREADS_ENV).ok();
    let prior_engine = std::env::var(ENGINE_ENV).ok();
    let set = |key: &str, value: Option<&str>| match value {
        Some(v) => std::env::set_var(key, v),
        None => std::env::remove_var(key),
    };
    set(THREADS_ENV, threads);
    set(ENGINE_ENV, engine);
    let out = f();
    set(THREADS_ENV, prior_threads.as_deref());
    set(ENGINE_ENV, prior_engine.as_deref());
    out
}

/// The full comparison matrix: both engines at serial and wide pool
/// widths. The first entry is the reference everything else must match.
const MATRIX: [(&str, &str); 4] = [
    ("cycle", "1"),
    ("cycle", "4"),
    ("event", "1"),
    ("event", "4"),
];

/// Renders `f` at every matrix point and asserts all outputs are
/// byte-identical, returning the common value.
fn assert_matrix_identical<R: PartialEq + std::fmt::Debug>(
    what: &str,
    f: impl Fn() -> R,
) -> R {
    let reference = with_knobs(Some(MATRIX[0].1), Some(MATRIX[0].0), &f);
    for (engine, threads) in &MATRIX[1..] {
        let got = with_knobs(Some(threads), Some(engine), &f);
        assert_eq!(
            reference, got,
            "{what} diverged at engine={engine} threads={threads}"
        );
    }
    reference
}

/// The full paper regeneration — every figure and table — is
/// byte-identical across the engine/thread matrix *and* equal to the
/// committed `paper_output.txt` snapshot, so switching the engine knob
/// can never move a digit of the evaluation.
#[test]
fn paper_tables_byte_identical_across_engines_and_threads() {
    let rendered = assert_matrix_identical("paper tables", || {
        harmonia_bench::all_tables()
            .iter()
            .map(|t| format!("{t}\n"))
            .collect::<String>()
    });
    let committed = include_str!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../paper_output.txt"
    ));
    assert_eq!(
        rendered, committed,
        "matrix output drifted from the committed snapshot"
    );
}

/// The observability plane exports byte-identically under either engine:
/// Perfetto JSON, text timeline, merged latency histogram and the driver
/// report transcript all survive the matrix untouched.
#[test]
fn trace_exports_byte_identical_across_engines_and_threads() {
    let (perfetto, text, _histogram, reports) =
        assert_matrix_identical("trace capture", || {
            let run = harmonia_bench::trace_run::capture(4);
            (
                run.trace.export_perfetto(),
                run.trace.export_text(),
                run.histogram.clone(),
                run.reports.join("\n"),
            )
        });
    // The capture is non-trivial under every matrix point: lanes traced,
    // faults visible, well-formed export.
    assert!(text.contains("cmd-retry"), "link flap must force retries");
    assert!(perfetto.starts_with('{') && perfetto.trim_end().ends_with('}'));
    assert_eq!(reports.lines().count(), 4, "one report per scenario");
}

/// One self-contained fault campaign (same shape as
/// `parallel_equivalence`): a seeded plan mixing scheduled link-flap +
/// credit-stall events with background drop/corrupt/irq-lost rates,
/// driven through the resilient bring-up + monitoring workflow. Returns
/// a rendered transcript for byte-exact comparison.
fn fault_campaign(seed: u64) -> String {
    use harmonia::cmd::{CommandCode, UnifiedControlKernel};
    use harmonia::host::{CommandDriver, DmaEngine, DriverError};
    use harmonia::hw::device::catalog;
    use harmonia::hw::ip::PcieDmaIp;
    use harmonia::hw::Vendor;
    use harmonia::shell::{MemoryDemand, RoleSpec, TailoredShell, UnifiedShell};
    use harmonia::sim::{FaultKind, FaultPlan, FaultRates};

    let dev = catalog::device_a();
    let unified = UnifiedShell::for_device(&dev);
    let role = RoleSpec::builder("engine-campaign")
        .network_gbps(100)
        .network_ports(1)
        .memory(MemoryDemand::Ddr { channels: 1 })
        .build();
    let mut shell = TailoredShell::tailor(&unified, &role).unwrap();
    let mut kernel = UnifiedControlKernel::new(64);
    kernel.attach_shell(shell.rbbs().iter().map(|r| r.as_ref()));
    let (gen, lanes) = dev.pcie().unwrap();
    let mut drv = CommandDriver::new(
        DmaEngine::new(PcieDmaIp::new(Vendor::Xilinx, gen, lanes)),
        kernel,
    );
    let plan = FaultPlan::new()
        .at(0, FaultKind::LinkDown)
        .at(30_000_000, FaultKind::LinkUp)
        .at(50_000_000, FaultKind::PcieCreditStall { beats: 1_000 })
        .with_rates(
            seed,
            FaultRates {
                cmd_drop: 0.05,
                cmd_corrupt: 0.05,
                irq_lost: 0.05,
                ecc: 0.0,
            },
        );
    let inj = plan.injector();
    drv.set_fault_injector(inj.clone());
    drv.init_shell_resilient(&mut shell).unwrap();
    for _ in 0..16 {
        match drv.cmd_raw_resilient(0, 0, CommandCode::HealthRead, Vec::new()) {
            Ok(_) | Err(DriverError::GaveUp { .. }) => {}
            Err(e) => panic!("campaign must converge, got {e}"),
        }
    }
    let _ = drv.read_all_stats_resilient(&shell).unwrap();
    assert!(drv.report().converged(), "seed {seed}: {}", drv.report());
    format!(
        "seed={seed} {} acked={:?} {}",
        drv.report(),
        drv.acked_log(),
        inj.report()
    )
}

/// Seeded fault-campaign reports are byte-identical across the engine
/// matrix: the fault plane consults in the same order under either
/// scheduler, at any pool width.
#[test]
fn fault_campaign_reports_byte_identical_across_engines_and_threads() {
    let transcript = assert_matrix_identical("fault campaigns", || {
        harmonia::sim::exec::par_map(0u64..8, fault_campaign).join("\n")
    });
    assert_eq!(transcript.lines().count(), 8, "one transcript per seed");
    // The campaigns exercised the fault plane, not a degenerate no-op.
    assert!(transcript.contains("retries="), "{transcript}");
    assert!(
        !transcript.contains("retries=0 timeouts=0 nacks=0 gave-up=0"),
        "no campaign observed any fault:\n{transcript}"
    );
}

/// The knob really selects the engine: the matrix above only means
/// something if `Engine::from_env` reads what `with_knobs` pins.
#[test]
fn engine_env_knob_selects_the_engine() {
    assert_eq!(with_knobs(None, None, Engine::from_env), Engine::Cycle);
    assert_eq!(
        with_knobs(None, Some("cycle"), Engine::from_env),
        Engine::Cycle
    );
    assert_eq!(
        with_knobs(None, Some("event"), Engine::from_env),
        Engine::Event
    );
}

/// The committed `BENCH_paper.json` must show the event engine's full
/// sweep no slower than the cycle engine's at the same pool width — the
/// skip-ahead scheduler is a performance feature, and this pins the
/// acceptance criterion to the committed artifact.
#[test]
fn committed_bench_shows_event_engine_no_slower() {
    let json = include_str!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_paper.json"
    ));
    let median = |name: &str| -> f64 {
        let entry = json
            .lines()
            .find(|l| l.contains(&format!("\"name\": \"{name}\"")))
            .unwrap_or_else(|| panic!("BENCH_paper.json is missing {name}"));
        let field = entry
            .split("\"median_ns\": ")
            .nth(1)
            .and_then(|rest| rest.split([',', '}']).next())
            .unwrap_or_else(|| panic!("{name} entry has no median_ns"));
        field.trim().parse().expect("median_ns parses as f64")
    };
    assert!(
        median("full_sweep_event_serial") <= median("full_sweep_serial"),
        "event engine slower than cycle engine (serial sweep)"
    );
    assert!(
        median("full_sweep_event_parallel") <= median("full_sweep_parallel"),
        "event engine slower than cycle engine (parallel sweep)"
    );
}
