//! Placement-quality contracts for the cluster-scale fleet sweep.
//!
//! 1. **Live bound** — re-running the sweep in-process, best-fit must
//!    hold the fleet p99 inside one control tick and rebalance within a
//!    few ticks of the peak-hour kill, while the spec-blind random
//!    baseline must blow the tail by ≥ 2× at every fleet size.
//! 2. **Committed artifact** — the repo-root `BENCH_fleet.json` (all
//!    simulated, hence byte-stable) shows the same split; drift means
//!    the artifact was not regenerated after a fleet change.
//! 3. **Snapshot isolation** — setting the fleet knobs
//!    (`HARMONIA_FLEET_DEVICES` / `HARMONIA_FLEET_POLICY`) must not
//!    move a byte of the committed paper snapshot at any engine/thread
//!    matrix point: the paper generators never consult them.

use harmonia::fleet::{FLEET_DEVICES_ENV, FLEET_POLICY_ENV, TICK_PS};
use harmonia::sim::exec::THREADS_ENV;
use harmonia::sim::ENGINE_ENV;
use harmonia_bench::fleet;
use std::sync::Mutex;

/// Env mutations are process-global; serialize against cargo's parallel
/// test runner (this file's own lock — other test binaries run in other
/// processes).
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_env<R>(pairs: &[(&str, Option<&str>)], f: impl FnOnce() -> R) -> R {
    let _guard = ENV_LOCK.lock().unwrap();
    let priors: Vec<_> = pairs
        .iter()
        .map(|(k, _)| (*k, std::env::var(k).ok()))
        .collect();
    let set = |key: &str, value: Option<&str>| match value {
        Some(v) => std::env::set_var(key, v),
        None => std::env::remove_var(key),
    };
    for (k, v) in pairs {
        set(k, *v);
    }
    let out = f();
    for (k, v) in priors {
        set(k, v.as_deref());
    }
    out
}

#[test]
fn best_fit_beats_random_at_every_fleet_size_live() {
    use harmonia::fleet::PlacementPolicy;
    for &devices in &fleet::DEVICES {
        let best = fleet::run_point(PlacementPolicy::BestFit, devices);
        let random = fleet::run_point(PlacementPolicy::Random, devices);
        assert_eq!(best.executed, best.injected, "best-fit/{devices}: drained");
        assert_eq!(random.executed, random.injected, "random/{devices}: drained");
        assert!(
            best.p99_ps <= TICK_PS,
            "best-fit/{devices}: p99 {} ps spills past one tick ({TICK_PS} ps)",
            best.p99_ps
        );
        assert!(
            random.p99_ps >= 2 * best.p99_ps,
            "random/{devices}: p99 {} ps does not show the spec-blind tail \
             (best-fit holds {} ps)",
            random.p99_ps,
            best.p99_ps
        );
        assert!(
            best.rebalance_ticks <= 8,
            "best-fit/{devices}: rebalance took {} ticks",
            best.rebalance_ticks
        );
        assert!(
            random.rebalance_ticks > best.rebalance_ticks,
            "random/{devices}: rebalance {} ticks should exceed best-fit's {}",
            random.rebalance_ticks,
            best.rebalance_ticks
        );
    }
}

#[test]
fn committed_bench_shows_the_same_placement_split() {
    let committed = include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json"));
    for &devices in &fleet::DEVICES {
        let best = fleet::field_from_json(committed, &format!("bestfit/devices={devices}"), "p99_ps")
            .expect("committed artifact carries the bestfit point");
        let random = fleet::field_from_json(committed, &format!("random/devices={devices}"), "p99_ps")
            .expect("committed artifact carries the random point");
        assert!(
            best <= TICK_PS,
            "committed bestfit/devices={devices} p99 {best} breaks the tick bound"
        );
        assert!(
            random >= 2 * best,
            "committed random/devices={devices} p99 {random} shows no blow-up over {best}"
        );
    }
    // The committed numbers are simulated, so a fresh sweep must
    // reproduce them exactly; drift means the artifact is stale.
    let fresh = fleet::sweep();
    let rendered = fleet::sweep_json(&fresh);
    assert_eq!(
        rendered, committed,
        "BENCH_fleet.json is stale; regenerate with:\n\
         cargo bench --bench fleet && cp target/testkit-bench/BENCH_fleet.json ."
    );
}

#[test]
fn paper_snapshot_is_byte_identical_with_fleet_knobs_set() {
    let committed = include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/../../paper_output.txt"));
    for (engine, threads) in [("cycle", "1"), ("cycle", "4"), ("event", "1"), ("event", "4")] {
        let rendered = with_env(
            &[
                (FLEET_DEVICES_ENV, Some("64")),
                (FLEET_POLICY_ENV, Some("random")),
                (ENGINE_ENV, Some(engine)),
                (THREADS_ENV, Some(threads)),
            ],
            || {
                harmonia_bench::all_tables()
                    .iter()
                    .map(|t| format!("{t}\n"))
                    .collect::<String>()
            },
        );
        assert_eq!(
            rendered, committed,
            "fleet knobs moved the paper snapshot at engine={engine} threads={threads}"
        );
    }
}
