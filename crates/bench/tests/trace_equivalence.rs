//! The observability plane's determinism contract, end to end: an enabled
//! capture exports byte-identically at any worker-pool width, and a
//! disabled (or merely env-enabled) collector never perturbs the paper
//! artifacts that `paper_snapshot` pins.

use harmonia::sim::exec::THREADS_ENV;
use harmonia::sim::TRACE_ENV;
use std::sync::Mutex;

/// Env mutations are process-global; serialize the tests that flip
/// `HARMONIA_THREADS` / `HARMONIA_TRACE` so cargo's parallel test runner
/// can't interleave them.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_env<R>(key: &str, value: Option<&str>, f: impl FnOnce() -> R) -> R {
    let _guard = ENV_LOCK.lock().unwrap();
    let prior = std::env::var(key).ok();
    match value {
        Some(v) => std::env::set_var(key, v),
        None => std::env::remove_var(key),
    }
    let out = f();
    match prior {
        Some(v) => std::env::set_var(key, v),
        None => std::env::remove_var(key),
    }
    out
}

/// Perfetto and text exports are byte-identical whether the campaign
/// fleet runs on one worker or four: lanes are assigned by submission
/// order and the merge sorts on `(time, lane, seq)`, never on thread
/// identity.
#[test]
fn trace_exports_byte_identical_serial_vs_parallel() {
    let capture = || {
        let run = harmonia_bench::trace_run::capture(4);
        (
            run.trace.export_perfetto(),
            run.trace.export_text(),
            run.histogram.clone(),
            run.reports.join("\n"),
        )
    };
    let serial = with_env(THREADS_ENV, Some("1"), capture);
    let parallel = with_env(THREADS_ENV, Some("4"), capture);
    assert_eq!(serial.0, parallel.0, "Perfetto export diverged");
    assert_eq!(serial.1, parallel.1, "text timeline diverged");
    assert_eq!(serial.2, parallel.2, "latency histogram diverged");
    assert_eq!(serial.3, parallel.3, "driver reports diverged");
    // The capture is non-trivial: every lane traced, faults visible.
    assert!(serial.1.contains("cmd-retry"));
    assert!(serial.0.starts_with('{') && serial.0.trim_end().ends_with('}'));
}

/// Turning `HARMONIA_TRACE` on must not move a single digit in the paper
/// artifacts: collection is observational only, and the no-trace fast
/// path (pinned byte-exactly by the `paper_snapshot` test) stays the
/// behavioral reference.
#[test]
fn enabling_trace_env_never_changes_paper_tables() {
    let render = || {
        [
            harmonia_bench::fig10::fig10a().to_string(),
            harmonia_bench::fig17::fig17d().to_string(),
        ]
        .join("\n")
    };
    let untraced = with_env(TRACE_ENV, None, render);
    let traced = with_env(TRACE_ENV, Some("1"), render);
    assert_eq!(untraced, traced);
}

/// The env knob really gates collection: unset (or "0") leaves the
/// driver's collector detached, any other value arms it.
#[test]
fn trace_env_knob_gates_collection() {
    use harmonia::sim::TraceCollector;
    let off = with_env(TRACE_ENV, None, TraceCollector::from_env);
    assert!(!off.is_enabled());
    let zero = with_env(TRACE_ENV, Some("0"), TraceCollector::from_env);
    assert!(!zero.is_enabled());
    let on = with_env(TRACE_ENV, Some("1"), TraceCollector::from_env);
    assert!(on.is_enabled());
}
