//! Pins the full paper reproduction to the committed snapshot.
//!
//! `paper_output.txt` at the repo root is the regression baseline: any
//! change to models, benchmarks or the fault plane that shifts a single
//! byte of the evaluation output fails here. In particular the no-op
//! fault plan (`FaultPlan::none()`) must keep every artifact bit-exact —
//! the paper binary takes the faultless paths throughout.

#[test]
fn all_tables_match_committed_snapshot() {
    let rendered: String = harmonia_bench::all_tables()
        .iter()
        .map(|t| format!("{t}\n"))
        .collect();
    let committed = include_str!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../paper_output.txt"
    ));
    if rendered != committed {
        let drift = rendered
            .lines()
            .zip(committed.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b);
        panic!(
            "paper output drifted from the committed snapshot \
             (first diff at line {:?}); if intentional, regenerate with:\n\
             cargo run -p harmonia-bench --bin paper > paper_output.txt",
            drift.map(|(i, (a, b))| format!("{}: {a:?} != {b:?}", i + 1))
        );
    }
}
