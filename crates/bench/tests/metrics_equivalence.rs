//! Determinism and isolation contracts for the metrics plane.
//!
//! 1. **Matrix byte-identity** — the Prometheus and JSON exports (and the
//!    rendered SLO report) of the fault-campaign capture are
//!    byte-identical at every `HARMONIA_ENGINE` × `HARMONIA_THREADS`
//!    matrix point: registries fill per lane and merge in seed order, so
//!    neither the scheduler nor the engine choice may move a byte.
//! 2. **Snapshot isolation** — enabling `HARMONIA_METRICS` must not move
//!    a byte of the committed paper snapshot: metrics are observational,
//!    never part of the model.
//! 3. **Post-mortem** — a campaign ending in `DriverError::GaveUp` dumps
//!    the flight recorder, and the dump names the failing command and
//!    carries its retry spans.
//! 4. **Committed report** — the repo-root `SLO_report.txt` (pass and
//!    fail sections) reproduces byte-exactly from a fresh capture.

use harmonia::host::DriverError;
use harmonia::sim::exec::THREADS_ENV;
use harmonia::sim::{ENGINE_ENV, METRICS_ENV, METRICS_PERIOD_ENV};
use harmonia_bench::metrics_run;
use std::sync::Mutex;

/// Env mutations are process-global; serialize against cargo's parallel
/// test runner (this file's own lock — other test binaries run in other
/// processes).
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_env<R>(pairs: &[(&str, Option<&str>)], f: impl FnOnce() -> R) -> R {
    let _guard = ENV_LOCK.lock().unwrap();
    let priors: Vec<_> = pairs
        .iter()
        .map(|(k, _)| (*k, std::env::var(k).ok()))
        .collect();
    let set = |key: &str, value: Option<&str>| match value {
        Some(v) => std::env::set_var(key, v),
        None => std::env::remove_var(key),
    };
    for (k, v) in pairs {
        set(k, *v);
    }
    let out = f();
    for (k, v) in priors {
        set(k, v.as_deref());
    }
    out
}

/// One full capture rendered into every export the plane offers.
fn exports() -> (String, String, String) {
    let run = metrics_run::capture(4);
    (
        run.snapshot.export_prometheus(),
        run.snapshot.export_json(),
        metrics_run::render_slo_artifact(&run),
    )
}

#[test]
fn exports_are_byte_identical_across_engine_and_thread_matrix() {
    let baseline = with_env(
        &[
            (ENGINE_ENV, Some("cycle")),
            (THREADS_ENV, Some("1")),
            (METRICS_PERIOD_ENV, None),
        ],
        exports,
    );
    assert!(baseline.0.contains("harmonia_cmd_acked_total"));
    for (engine, threads) in [("cycle", "4"), ("event", "1"), ("event", "4")] {
        let got = with_env(
            &[
                (ENGINE_ENV, Some(engine)),
                (THREADS_ENV, Some(threads)),
                (METRICS_PERIOD_ENV, None),
            ],
            exports,
        );
        assert_eq!(
            got, baseline,
            "metrics exports moved at engine={engine} threads={threads}"
        );
    }
}

#[test]
fn enabling_metrics_leaves_the_paper_snapshot_untouched() {
    let committed = include_str!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../paper_output.txt"
    ));
    for (engine, threads) in [("cycle", "1"), ("cycle", "4"), ("event", "1"), ("event", "4")] {
        let rendered = with_env(
            &[
                (METRICS_ENV, Some("1")),
                (ENGINE_ENV, Some(engine)),
                (THREADS_ENV, Some(threads)),
            ],
            || {
                harmonia_bench::all_tables()
                    .iter()
                    .map(|t| format!("{t}\n"))
                    .collect::<String>()
            },
        );
        assert_eq!(
            rendered, committed,
            "HARMONIA_METRICS=1 moved the paper snapshot at \
             engine={engine} threads={threads}"
        );
    }
}

#[test]
fn gave_up_campaign_dumps_the_failing_commands_retries() {
    let (err, dump) = with_env(
        &[(METRICS_ENV, None), (METRICS_PERIOD_ENV, None)],
        metrics_run::post_mortem_campaign,
    );
    let DriverError::GaveUp { attempts, .. } = err else {
        panic!("a permanently down link must end in GaveUp, got {err}");
    };
    assert!(dump.starts_with("post-mortem: gave up on cmd 0x"));
    assert!(dump.contains(&format!("after {attempts} attempt(s)")));
    assert!(dump.contains("flight recorder: last"));
    // The ring holds the whole retry ladder: issue, timeout and retry
    // spans for every burned attempt.
    assert!(dump.contains("cmd-issue"), "issue spans missing:\n{dump}");
    assert!(dump.contains("cmd-timeout"), "timeouts missing:\n{dump}");
    assert!(dump.contains("cmd-retry"), "retry spans missing:\n{dump}");
    assert_eq!(
        dump.matches("cmd-retry").count() as u32,
        attempts - 1,
        "one retry span per burned attempt:\n{dump}"
    );
}

#[test]
fn committed_slo_report_is_fresh() {
    let committed = include_str!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../SLO_report.txt"
    ));
    assert!(committed.contains("PASS cmd-latency-p99"));
    assert!(committed.contains("FAIL cmd-latency-p99-tight"));
    assert!(committed.contains("slo: 3/3 objectives met"));
    assert!(committed.contains("slo: 0/2 objectives met"));
    let fresh = with_env(&[(METRICS_PERIOD_ENV, None)], || {
        metrics_run::render_slo_artifact(&metrics_run::capture(4))
    });
    assert_eq!(
        fresh, committed,
        "SLO_report.txt is stale; regenerate with:\n\
         cargo run --bin metrics -- --slo > SLO_report.txt"
    );
}
