//! Noisy-neighbor isolation contracts for the multi-tenant scheduler.
//!
//! 1. **Live bound** — re-running the sweep in-process, weighted-fair
//!    must hold the victim's p99 at ≤ 2× its solo baseline at every
//!    tenant count, while round-robin must exceed that bound (the
//!    victim waits out whole aggressor slices).
//! 2. **Committed artifact** — the repo-root `BENCH_tenancy.json` (all
//!    simulated, hence byte-stable) shows the same split; drift means
//!    the artifact was not regenerated after a tenancy change.
//! 3. **Snapshot isolation** — enabling the tenancy knobs
//!    (`HARMONIA_TENANT_POLICY` / `HARMONIA_TENANT_SLICE_PS`) must not
//!    move a byte of the committed paper snapshot at any engine/thread
//!    matrix point: the paper generators never consult them.

use harmonia::shell::sched::{TenantPolicy, TENANT_POLICY_ENV, TENANT_SLICE_ENV};
use harmonia::sim::exec::THREADS_ENV;
use harmonia::sim::ENGINE_ENV;
use harmonia_bench::tenancy;
use std::sync::Mutex;

/// Env mutations are process-global; serialize against cargo's parallel
/// test runner (this file's own lock — other test binaries run in other
/// processes).
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_env<R>(pairs: &[(&str, Option<&str>)], f: impl FnOnce() -> R) -> R {
    let _guard = ENV_LOCK.lock().unwrap();
    let priors: Vec<_> = pairs
        .iter()
        .map(|(k, _)| (*k, std::env::var(k).ok()))
        .collect();
    let set = |key: &str, value: Option<&str>| match value {
        Some(v) => std::env::set_var(key, v),
        None => std::env::remove_var(key),
    };
    for (k, v) in pairs {
        set(k, *v);
    }
    let out = f();
    for (k, v) in priors {
        set(k, v.as_deref());
    }
    out
}

#[test]
fn wfq_bounds_victim_p99_where_round_robin_does_not_live() {
    for &tenants in &tenancy::TENANTS {
        let wfq = tenancy::run_point(TenantPolicy::WeightedFair, tenants);
        assert!(
            wfq.p99_ratio <= 2.0,
            "wfq/tenants={tenants}: victim p99 {} ps is {:.2}x solo {} ps",
            wfq.victim_p99_ps,
            wfq.p99_ratio,
            wfq.victim_solo_p99_ps
        );
        let rr = tenancy::run_point(TenantPolicy::RoundRobin, tenants);
        assert!(
            rr.p99_ratio > 2.0,
            "rr/tenants={tenants}: round-robin unexpectedly held the victim \
             at {:.2}x solo — the noisy-neighbor scenario lost its teeth",
            rr.p99_ratio
        );
        // The flood must be held back by quota enforcement, not by
        // aggressors politely draining first.
        assert!(wfq.quota_exhausted > 0, "wfq/tenants={tenants}: no quota hits");
        assert!(rr.quota_exhausted > 0, "rr/tenants={tenants}: no quota hits");
    }
}

#[test]
fn committed_bench_shows_the_same_isolation_split() {
    let committed = include_str!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_tenancy.json"
    ));
    for &tenants in &tenancy::TENANTS {
        let wfq = tenancy::ratio_from_json(committed, &format!("wfq/tenants={tenants}"))
            .expect("committed artifact carries the wfq point");
        let rr = tenancy::ratio_from_json(committed, &format!("rr/tenants={tenants}"))
            .expect("committed artifact carries the rr point");
        assert!(
            wfq <= 2.0,
            "committed wfq/tenants={tenants} ratio {wfq:.2} breaks the bound"
        );
        assert!(
            rr > 2.0,
            "committed rr/tenants={tenants} ratio {rr:.2} shows no interference"
        );
    }
    // The committed numbers are simulated, so a fresh sweep must
    // reproduce them exactly; drift means the artifact is stale.
    let fresh = tenancy::sweep();
    let rendered = tenancy::sweep_json(&fresh);
    assert_eq!(
        rendered, committed,
        "BENCH_tenancy.json is stale; regenerate with:\n\
         cargo bench --bench tenancy && cp target/testkit-bench/BENCH_tenancy.json ."
    );
}

#[test]
fn paper_snapshot_is_byte_identical_with_tenancy_enabled() {
    let committed = include_str!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../paper_output.txt"
    ));
    for (engine, threads) in [("cycle", "1"), ("cycle", "4"), ("event", "1"), ("event", "4")] {
        let rendered = with_env(
            &[
                (TENANT_POLICY_ENV, Some("wfq")),
                (TENANT_SLICE_ENV, Some("1000000")),
                (ENGINE_ENV, Some(engine)),
                (THREADS_ENV, Some(threads)),
            ],
            || {
                harmonia_bench::all_tables()
                    .iter()
                    .map(|t| format!("{t}\n"))
                    .collect::<String>()
            },
        );
        assert_eq!(
            rendered, committed,
            "tenancy knobs moved the paper snapshot at \
             engine={engine} threads={threads}"
        );
    }
}
