//! Figure 12 — shell tailoring reduces module configurations for roles.

use harmonia::hw::device::catalog;
use harmonia::metrics::report::fmt_x;
use harmonia::metrics::Table;
use harmonia::shell::{TailoredShell, UnifiedShell};
use harmonia::sim::exec::par_sweep;

/// Configuration items before (native modules) vs after (role-oriented)
/// property-level tailoring, per application.
pub fn fig12() -> Table {
    let device = catalog::device_a();
    let unified = UnifiedShell::for_device(&device);
    let mut t = Table::new(
        "Figure 12 — configuration items per role",
        &["application", "native items", "role-oriented", "reduction"],
    );
    let rows = par_sweep(crate::roles::all(), |(name, role)| {
        let shell = TailoredShell::tailor(&unified, &role).expect("roles deploy on device A");
        let inv = shell.config_inventory();
        [
            name.to_string(),
            inv.total().to_string(),
            inv.role_oriented().to_string(),
            fmt_x(inv.reduction_factor().expect("roles keep some config")),
        ]
    });
    for r in rows {
        t.row(r);
    }
    t
}

/// All Figure 12 tables.
pub fn generate() -> Vec<Table> {
    vec![fig12()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reductions_in_paper_band() {
        let t = fig12();
        assert_eq!(t.len(), 5);
        for line in t.to_string().lines().skip(3) {
            let x: f64 = line
                .split_whitespace()
                .last()
                .unwrap()
                .trim_end_matches('x')
                .parse()
                .unwrap();
            assert!((8.0..=20.0).contains(&x), "reduction {x} out of band");
        }
    }
}
