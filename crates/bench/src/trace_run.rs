//! Shared capture harness for the observability plane (`trace` binary,
//! `trace_capture` example, equivalence tests).
//!
//! Runs a fleet of seeded fault campaigns — resilient shell bring-up plus
//! a monitoring sweep under a scheduled link flap, a credit stall and
//! background drop/corrupt/irq-lost rates — through
//! [`par_traced`], so every worker
//! records onto its own lane and the merged timeline is byte-identical at
//! any `HARMONIA_THREADS` setting.

use harmonia::cmd::{CommandCode, UnifiedControlKernel};
use harmonia::host::{CommandDriver, DmaEngine, DriverError};
use harmonia::hw::device::catalog;
use harmonia::hw::ip::PcieDmaIp;
use harmonia::hw::Vendor;
use harmonia::shell::{MemoryDemand, RoleSpec, TailoredShell, UnifiedShell};
use harmonia::sim::{
    par_traced, FaultKind, FaultPlan, FaultRates, LogHistogram, Trace, TraceCollector,
};

/// Everything one capture produces: the merged timeline, the merged
/// command-latency histogram, and one driver-report line per scenario.
#[derive(Clone, Debug)]
pub struct TraceRun {
    /// Merged, deterministically ordered timeline across all scenarios.
    pub trace: Trace,
    /// Command-latency histogram summed over every scenario's driver.
    pub histogram: LogHistogram,
    /// `seed=N <driver report>` transcript lines, in seed order.
    pub reports: Vec<String>,
}

/// Captures `scenarios` seeded fault campaigns onto one merged timeline.
///
/// Each seed drives an independent campaign on its own trace lane; the
/// fleet fans out over the scoped worker pool and merges in seed order,
/// so the result does not depend on the thread count.
pub fn capture(scenarios: u64) -> TraceRun {
    let seeds: Vec<u64> = (0..scenarios).collect();
    let (outcomes, trace) = par_traced(seeds, |&seed, tc| scenario(seed, tc));
    let mut histogram = LogHistogram::new();
    let mut reports = Vec::new();
    for (histo, report) in outcomes {
        histogram.merge(&histo);
        reports.push(report);
    }
    TraceRun {
        trace,
        histogram,
        reports,
    }
}

/// One seeded campaign: bring up a tailored shell resiliently under the
/// fault plan, then poke health and sweep all module statistics. Returns
/// the driver's latency histogram and a one-line report.
fn scenario(seed: u64, tc: &TraceCollector) -> (LogHistogram, String) {
    let dev = catalog::device_a();
    let unified = UnifiedShell::for_device(&dev);
    let role = RoleSpec::builder("trace-campaign")
        .network_gbps(100)
        .network_ports(1)
        .memory(MemoryDemand::Ddr { channels: 1 })
        .build();
    let mut shell = TailoredShell::tailor(&unified, &role).expect("role fits device A");
    let mut kernel = UnifiedControlKernel::new(64);
    kernel.attach_shell(shell.rbbs().iter().map(|r| r.as_ref()));
    let (gen, lanes) = dev.pcie().expect("device A has PCIe");
    let mut drv = CommandDriver::new(
        DmaEngine::new(PcieDmaIp::new(Vendor::Xilinx, gen, lanes)),
        kernel,
    );
    drv.set_trace_collector(tc.clone());
    drv.set_fault_injector(
        FaultPlan::new()
            .at(0, FaultKind::LinkDown)
            .at(30_000_000, FaultKind::LinkUp)
            .at(50_000_000, FaultKind::PcieCreditStall { beats: 1_000 })
            .with_rates(
                seed,
                FaultRates {
                    cmd_drop: 0.05,
                    cmd_corrupt: 0.05,
                    irq_lost: 0.05,
                    ecc: 0.0,
                },
            )
            .injector(),
    );
    drv.init_shell_resilient(&mut shell)
        .expect("bring-up converges under the plan");
    for _ in 0..8 {
        match drv.cmd_raw_resilient(0, 0, CommandCode::HealthRead, Vec::new()) {
            Ok(_) | Err(DriverError::GaveUp { .. }) => {}
            Err(e) => panic!("campaign must converge, got {e}"),
        }
    }
    let _ = drv
        .read_all_stats_resilient(&shell)
        .expect("monitoring sweep succeeds");
    (
        drv.latency_histogram().clone(),
        format!("seed={seed} {}", drv.report()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_merges_lanes_and_histograms() {
        let run = capture(3);
        assert_eq!(run.reports.len(), 3);
        assert!(!run.trace.is_empty());
        assert!(run.histogram.count() > 0);
        // All three lanes contribute events.
        for lane in 0..3 {
            assert!(
                run.trace.events().iter().any(|e| e.lane == lane),
                "lane {lane} recorded nothing"
            );
        }
        // The fault plan leaves its signature on the timeline.
        let text = run.trace.export_text();
        assert!(text.contains("cmd-retry"), "link flap must force retries");
        assert!(text.contains("cmd-ack"));
    }
}
