//! Figure 14 — RBB reuse across vendors and chips.

use harmonia::hw::Vendor;
use harmonia::metrics::report::fmt_f64;
use harmonia::metrics::Table;
use harmonia::shell::rbb::{HostRbb, MemoryRbb, MigrationKind, NetworkRbb, Rbb};

/// Reuse fractions per RBB for cross-vendor (A↔C) and cross-chip (A↔B)
/// migrations.
pub fn fig14() -> Table {
    let mut t = Table::new(
        "Figure 14 — RBB development-workload reuse",
        &[
            "RBB",
            "reuse (cross-vendor)",
            "redev (cross-vendor)",
            "reuse (cross-chip)",
            "redev (cross-chip)",
        ],
    );
    let rbbs: Vec<(&str, Box<dyn Rbb>)> = vec![
        (
            "Network",
            Box::new(NetworkRbb::with_speed(Vendor::Xilinx, 100, 64)),
        ),
        ("Host", Box::new(HostRbb::with_link(Vendor::Xilinx, 4, 8))),
        ("Memory", Box::new(MemoryRbb::ddr(Vendor::Xilinx, 4, 2))),
    ];
    let rows = harmonia::sim::exec::par_sweep(&rbbs, |(name, rbb)| {
        let xv = rbb.workload(MigrationKind::CrossVendor).reuse_fraction();
        let xc = rbb.workload(MigrationKind::CrossChip).reuse_fraction();
        [
            name.to_string(),
            fmt_f64(xv, 2),
            fmt_f64(1.0 - xv, 2),
            fmt_f64(xc, 2),
            fmt_f64(1.0 - xc, 2),
        ]
    });
    for r in rows {
        t.row(r);
    }
    t
}

/// All Figure 14 tables.
pub fn generate() -> Vec<Table> {
    vec![fig14()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_bands_match_paper() {
        let t = fig14();
        assert_eq!(t.len(), 3);
        for line in t.to_string().lines().skip(3) {
            let cells: Vec<&str> = line.split_whitespace().collect();
            let xv: f64 = cells[cells.len() - 4].parse().unwrap();
            let xc: f64 = cells[cells.len() - 2].parse().unwrap();
            assert!((0.64..=0.78).contains(&xv), "cross-vendor {xv} in '{line}'");
            assert!((0.80..=0.95).contains(&xc), "cross-chip {xc} in '{line}'");
            assert!(xc > xv, "cross-chip must reuse more than cross-vendor");
        }
    }
}
