//! Figure 11 — shell tailoring reduces resource consumption.

use harmonia::hw::device::catalog;
use harmonia::hw::{ResourceKind, ResourceUsage};
use harmonia::metrics::report::fmt_pct;
use harmonia::metrics::Table;
use harmonia::shell::{TailoredShell, UnifiedShell};
use harmonia::sim::exec::par_sweep;

/// Resource occupancy (% of device A) for the unified shell and each
/// application's tailored shell, by resource kind.
pub fn fig11() -> Table {
    let device = catalog::device_a();
    let unified = UnifiedShell::for_device(&device);
    let mut t = Table::new(
        "Figure 11 — shell resource occupancy on Device A",
        &["shell", "LUT", "REG", "BRAM", "URAM", "saving (LUT)"],
    );
    let pct = |usage: &ResourceUsage, kind| fmt_pct(usage.percent_of(device.capacity(), kind));
    let u = unified.resources();
    t.row([
        "Unified".to_string(),
        pct(&u, ResourceKind::Lut),
        pct(&u, ResourceKind::Reg),
        pct(&u, ResourceKind::Bram),
        pct(&u, ResourceKind::Uram),
        "-".to_string(),
    ]);
    let rows = par_sweep(crate::roles::all(), |(name, role)| {
        let shell = TailoredShell::tailor(&unified, &role).expect("roles deploy on device A");
        let r = shell.resources();
        [
            format!("{name} shell"),
            pct(&r, ResourceKind::Lut),
            pct(&r, ResourceKind::Reg),
            pct(&r, ResourceKind::Bram),
            pct(&r, ResourceKind::Uram),
            fmt_pct(100.0 * shell.overall_savings_vs(&unified)),
        ]
    });
    for r in rows {
        t.row(r);
    }
    t
}

/// All Figure 11 tables.
pub fn generate() -> Vec<Table> {
    vec![fig11()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tailored_shells_save_resources() {
        let t = fig11();
        assert_eq!(t.len(), 6);
        let text = t.to_string();
        for line in text.lines().skip(4) {
            // skip unified row
            let saving: f64 = line
                .split_whitespace()
                .last()
                .unwrap()
                .trim_end_matches('%')
                .parse()
                .unwrap();
            assert!(
                (2.0..=31.0).contains(&saving),
                "saving out of band in '{line}'"
            );
        }
    }
}
