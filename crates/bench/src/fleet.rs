//! The cluster-scale fleet sweep behind `cargo bench --bench fleet`.
//!
//! Policy × fleet-size campaigns over the heterogeneous catalog: each
//! point runs a full simulated day of diurnal traffic with one
//! kill-device fault injected at the evening peak, and reports
//! placement quality (fleet p50/p99) plus rebalance latency (ticks of
//! aged backlog after the fault). The contract the `fleet_scaling`
//! test pins: **best-fit holds the fleet p99 inside one control tick
//! and rebalances within a few ticks of the kill**, while the
//! spec-blind **random baseline blows the tail by ≥ 2×** — it sizes
//! replica counts against the fastest model in the fleet and then
//! lands them on whatever it draws. All numbers are simulated and
//! deterministic — the committed `BENCH_fleet.json` is byte-stable
//! across machines.

use harmonia::fleet::{FleetController, FleetSpec, PlacementPolicy, TICK_PS};

/// Fleet sizes the sweep covers.
pub const DEVICES: [usize; 2] = [128, 512];

/// Sweep seed (inventory shuffle, traffic jitter, random placement).
pub const SEED: u64 = 7;

/// Tick the kill lands on: 21:00, the diurnal peak — the worst moment
/// to lose a serving card.
pub const KILL_TICK: u32 = 252;

/// One measured (policy, devices) point of the sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetPoint {
    /// Placement policy (`bestfit` / `random`).
    pub policy: &'static str,
    /// Fleet size.
    pub devices: usize,
    /// Fleet-wide command-latency p50, ps.
    pub p50_ps: u64,
    /// Fleet-wide command-latency p99, ps.
    pub p99_ps: u64,
    /// Commands injected over the day.
    pub injected: u64,
    /// Commands executed (equals `injected` when the drain converged).
    pub executed: u64,
    /// Commands migrated off the killed device (and any orphan moves).
    pub migrated: u64,
    /// Ticks of aged backlog at/after the kill — the rebalance latency.
    pub rebalance_ticks: u32,
    /// All ticks that ended with aged backlog.
    pub congested_ticks: u32,
    /// Replicas the placement claimed.
    pub replicas: usize,
}

impl FleetPoint {
    /// The `POLICY/devices=N` name this point publishes under.
    pub fn name(&self) -> String {
        format!("{}/devices={}", self.policy, self.devices)
    }
}

/// Runs one sweep point. `policy` is explicit — the sweep never
/// consults `HARMONIA_FLEET_POLICY` or `HARMONIA_FLEET_DEVICES`, so
/// bench numbers cannot drift with the caller's environment.
pub fn run_point(policy: PlacementPolicy, devices: usize) -> FleetPoint {
    let mut fleet =
        FleetController::new(FleetSpec::new(devices, SEED, policy)).expect("placement feasible");
    let victim = fleet.assignments()[0].device;
    fleet.kill_device(victim, KILL_TICK);
    let report = fleet.run();
    assert!(report.accounting.exact(), "{}: books must balance", policy.name());
    FleetPoint {
        policy: report.policy,
        devices: report.devices,
        p50_ps: report.fleet_latency.p50(),
        p99_ps: report.fleet_latency.p99(),
        injected: report.accounting.injected,
        executed: report.accounting.executed,
        migrated: report.accounting.migrated,
        rebalance_ticks: report.rebalance_ticks,
        congested_ticks: report.congested_ticks,
        replicas: report.replicas,
    }
}

/// The full policy × fleet-size sweep, in declaration order.
pub fn sweep() -> Vec<FleetPoint> {
    let grid: Vec<(PlacementPolicy, usize)> = [PlacementPolicy::BestFit, PlacementPolicy::Random]
        .iter()
        .flat_map(|&p| DEVICES.iter().map(move |&d| (p, d)))
        .collect();
    harmonia::sim::exec::par_map(grid, |(p, d)| run_point(p, d))
}

/// Renders the sweep as the `BENCH_fleet.json` artifact body
/// (hand-rolled, like the other simulated artifacts; byte-stable).
pub fn sweep_json(points: &[FleetPoint]) -> String {
    let mut out = String::from("{\n  \"group\": \"fleet\",\n");
    out.push_str("  \"unit\": \"simulated\",\n");
    out.push_str(&format!("  \"seed\": {SEED},\n"));
    out.push_str(&format!("  \"kill_tick\": {KILL_TICK},\n"));
    out.push_str(&format!("  \"tick_ps\": {TICK_PS},\n"));
    out.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"policy\": \"{}\", \"devices\": {}, \
             \"p50_ps\": {}, \"p99_ps\": {}, \"injected\": {}, \
             \"executed\": {}, \"migrated\": {}, \"rebalance_ticks\": {}, \
             \"congested_ticks\": {}, \"replicas\": {}}}{}\n",
            p.name(),
            p.policy,
            p.devices,
            p.p50_ps,
            p.p99_ps,
            p.injected,
            p.executed,
            p.migrated,
            p.rebalance_ticks,
            p.congested_ticks,
            p.replicas,
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Pulls an integer field for one named point out of a rendered (or
/// committed) `BENCH_fleet.json`.
pub fn field_from_json(json: &str, name: &str, field: &str) -> Option<u64> {
    let needle = format!("\"name\": \"{name}\"");
    let line = json.lines().find(|l| l.contains(&needle))?;
    let key = format!("\"{field}\": ");
    let start = line.find(&key)? + key.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrips_fields() {
        let points = vec![run_point(PlacementPolicy::BestFit, 96)];
        let json = sweep_json(&points);
        let p = &points[0];
        assert_eq!(field_from_json(&json, &p.name(), "p99_ps"), Some(p.p99_ps));
        assert_eq!(field_from_json(&json, &p.name(), "injected"), Some(p.injected));
        assert_eq!(field_from_json(&json, "bestfit/devices=9", "p99_ps"), None);
    }

    #[test]
    fn points_are_deterministic() {
        assert_eq!(
            run_point(PlacementPolicy::Random, 96),
            run_point(PlacementPolicy::Random, 96)
        );
    }
}
