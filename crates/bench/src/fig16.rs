//! Figure 16 — resource overhead of wrappers and the unified control
//! kernel.

use harmonia::cmd::UnifiedControlKernel;
use harmonia::hw::device::catalog;
use harmonia::hw::ip::{DdrIp, MacIp, PcieDmaIp, VendorIp};
use harmonia::hw::Vendor;
use harmonia::metrics::report::fmt_pct;
use harmonia::metrics::Table;
use harmonia::platform::InterfaceWrapper;

/// Highest resource-consumption percentage of each wrapper and of the UCK
/// across the catalog devices.
pub fn fig16() -> Table {
    let mut t = Table::new(
        "Figure 16 — Harmonia hardware overhead (max % across devices)",
        &["module", "LUT %", "REG %", "BRAM %", "max %"],
    );
    let ips: Vec<(&str, Box<dyn VendorIp>)> = vec![
        ("MAC wrapper", Box::new(MacIp::new(Vendor::Xilinx, 100))),
        (
            "PCIe wrapper",
            Box::new(PcieDmaIp::new(Vendor::Xilinx, 4, 8)),
        ),
        (
            "DMA wrapper",
            Box::new(PcieDmaIp::new(Vendor::Intel, 4, 16)),
        ),
        ("DDR wrapper", Box::new(DdrIp::new(Vendor::Xilinx, 4))),
    ];
    let devices = catalog::all();
    let rows = harmonia::sim::exec::par_sweep(&ips, |(name, ip)| {
        let w = InterfaceWrapper::wrap(ip.as_ref(), 512);
        let res = w.resources();
        let max_over = |f: &dyn Fn(&harmonia::hw::ResourceUsage, &harmonia::hw::ResourceUsage) -> f64| {
            devices
                .iter()
                .map(|d| f(&res, d.capacity()))
                .fold(0.0, f64::max)
        };
        [
            name.to_string(),
            fmt_pct(max_over(&|r, c| r.percent_of(c, harmonia::hw::ResourceKind::Lut))),
            fmt_pct(max_over(&|r, c| r.percent_of(c, harmonia::hw::ResourceKind::Reg))),
            fmt_pct(max_over(&|r, c| r.percent_of(c, harmonia::hw::ResourceKind::Bram))),
            fmt_pct(max_over(&|r, c| r.max_percent_of(c))),
        ]
    });
    for r in rows {
        t.row(r);
    }
    let uck = UnifiedControlKernel::resources();
    let max_uck = devices
        .iter()
        .map(|d| uck.max_percent_of(d.capacity()))
        .fold(0.0, f64::max);
    t.row([
        "Unified control kernel".to_string(),
        fmt_pct(
            devices
                .iter()
                .map(|d| uck.percent_of(d.capacity(), harmonia::hw::ResourceKind::Lut))
                .fold(0.0, f64::max),
        ),
        fmt_pct(
            devices
                .iter()
                .map(|d| uck.percent_of(d.capacity(), harmonia::hw::ResourceKind::Reg))
                .fold(0.0, f64::max),
        ),
        fmt_pct(
            devices
                .iter()
                .map(|d| uck.percent_of(d.capacity(), harmonia::hw::ResourceKind::Bram))
                .fold(0.0, f64::max),
        ),
        fmt_pct(max_uck),
    ]);
    t
}

/// All Figure 16 tables.
pub fn generate() -> Vec<Table> {
    vec![fig16()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overheads_below_paper_bounds() {
        let t = fig16();
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().skip(3).collect();
        // Wrappers < 0.37 %.
        for line in &lines[..4] {
            let max: f64 = line
                .split_whitespace()
                .last()
                .unwrap()
                .trim_end_matches('%')
                .parse()
                .unwrap();
            assert!(max < 0.37, "wrapper overhead {max}% in '{line}'");
        }
        // UCK < 0.67 %.
        let uck: f64 = lines[4]
            .split_whitespace()
            .last()
            .unwrap()
            .trim_end_matches('%')
            .parse()
            .unwrap();
        assert!(uck < 0.67, "UCK overhead {uck}%");
    }
}
