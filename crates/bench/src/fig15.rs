//! Figure 15 — application shell reuse across FPGAs.

use harmonia::hw::device::catalog;
use harmonia::metrics::report::fmt_f64;
use harmonia::metrics::Table;
use harmonia::shell::rbb::MigrationKind;
use harmonia::shell::{TailoredShell, UnifiedShell};
use harmonia::sim::exec::par_sweep;

/// Per-application shell reuse when the deployment fleet mixes chip
/// families and vendors; reported as the reuse fraction of the worst
/// (cross-vendor) and best (cross-chip) migrations.
pub fn fig15() -> Table {
    let device = catalog::device_a();
    let unified = UnifiedShell::for_device(&device);
    let mut t = Table::new(
        "Figure 15 — application shell reuse across FPGAs",
        &["application", "reuse (cross-vendor)", "reuse (cross-chip)"],
    );
    let rows = par_sweep(crate::roles::all(), |(name, role)| {
        let shell = TailoredShell::tailor(&unified, &role).expect("roles deploy on device A");
        let xv = shell.workload(MigrationKind::CrossVendor).reuse_fraction();
        let xc = shell.workload(MigrationKind::CrossChip).reuse_fraction();
        [name.to_string(), fmt_f64(xv, 2), fmt_f64(xc, 2)]
    });
    for r in rows {
        t.row(r);
    }
    t
}

/// All Figure 15 tables.
pub fn generate() -> Vec<Table> {
    vec![fig15()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_shell_reuse_in_band() {
        let t = fig15();
        assert_eq!(t.len(), 5);
        for line in t.to_string().lines().skip(3) {
            let cells: Vec<&str> = line.split_whitespace().collect();
            let xv: f64 = cells[cells.len() - 2].parse().unwrap();
            // The paper reports 70–80 % across applications; cross-vendor
            // sits at the low end of that, cross-chip above it.
            assert!((0.64..=0.82).contains(&xv), "'{line}'");
        }
    }
}
