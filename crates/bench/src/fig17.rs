//! Figure 17 — application performance with and without Harmonia.

use harmonia::apps::{HostNetwork, RetrievalEngine, SecGateway};
use harmonia::metrics::report::fmt_f64;
use harmonia::metrics::Table;
use harmonia::sim::exec::par_sweep;
use harmonia::sim::Freq;

fn bitw_table(title: &str, path: harmonia::apps::BitwPath) -> Table {
    let mut t = Table::new(
        title,
        &[
            "pkt (B)",
            "w/o tpt (Gbps)",
            "w/ tpt (Gbps)",
            "w/o lat (us)",
            "w/ lat (us)",
            "lat delta",
        ],
    );
    let without = path.clone().without_harmonia();
    let rows = par_sweep([64u32, 128, 256, 512, 1024], |size| {
        let w = path.perf(size);
        let wo = without.perf(size);
        let delta = (w.latency_ps - wo.latency_ps) as f64 / wo.latency_ps as f64;
        [
            size.to_string(),
            fmt_f64(wo.throughput, 2),
            fmt_f64(w.throughput, 2),
            fmt_f64(wo.latency_us(), 3),
            fmt_f64(w.latency_us(), 3),
            format!("{:.2}%", 100.0 * delta),
        ]
    });
    for r in rows {
        t.row(r);
    }
    t
}

/// Figure 17a: Sec-Gateway.
pub fn fig17a() -> Table {
    let gw = SecGateway::new(harmonia::apps::sec_gateway::Action::Allow);
    bitw_table("Figure 17a — Sec-Gateway performance", gw.datapath())
}

/// Figure 17b: Layer-4 LB.
pub fn fig17b() -> Table {
    bitw_table(
        "Figure 17b — Layer-4 LB performance",
        crate::roles::sample_lb().datapath(),
    )
}

/// Figure 17c: Host Network.
pub fn fig17c() -> Table {
    bitw_table(
        "Figure 17c — Host Network performance",
        HostNetwork::new(1024).datapath(),
    )
}

/// Figure 17d: Retrieval QPS/latency vs corpus size.
pub fn fig17d() -> Table {
    let mut t = Table::new(
        "Figure 17d — Retrieval performance",
        &[
            "corpus items",
            "w/o QPS",
            "w/ QPS",
            "w/o lat (us)",
            "w/ lat (us)",
        ],
    );
    let clock = Freq::mhz(450);
    let rows = par_sweep([3u32, 5, 7, 9], |exp| {
        let items = 10u64.pow(exp);
        // Capacity model: geometry only, sharded across FPGAs past 10^6.
        let engine = RetrievalEngine::capacity_only(items, 64);
        let w = engine.sharded_perf(2048, clock, true);
        let wo = engine.sharded_perf(2048, clock, false);
        [
            format!("1e{exp}"),
            fmt_f64(wo.throughput, 1),
            fmt_f64(w.throughput, 1),
            fmt_f64(wo.latency_us(), 1),
            fmt_f64(w.latency_us(), 1),
        ]
    });
    for r in rows {
        t.row(r);
    }
    t
}

/// All Figure 17 tables.
pub fn generate() -> Vec<Table> {
    vec![fig17a(), fig17b(), fig17c(), fig17d()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_identical_latency_delta_below_1pct() {
        for t in [fig17a(), fig17b(), fig17c()] {
            for line in t.to_string().lines().skip(3) {
                let cells: Vec<&str> = line.split_whitespace().collect();
                let wo_t: f64 = cells[cells.len() - 5].parse().unwrap();
                let w_t: f64 = cells[cells.len() - 4].parse().unwrap();
                assert_eq!(wo_t, w_t, "{}: '{line}'", t.title());
                let delta: f64 = cells
                    .last()
                    .unwrap()
                    .trim_end_matches('%')
                    .parse()
                    .unwrap();
                assert!(delta < 1.0, "{}: latency delta {delta}%", t.title());
                assert!(delta > 0.0);
            }
        }
    }

    #[test]
    fn retrieval_qps_identical_with_and_without() {
        let t = fig17d();
        for line in t.to_string().lines().skip(3) {
            let cells: Vec<&str> = line.split_whitespace().collect();
            let wo: f64 = cells[cells.len() - 4].parse().unwrap();
            let w: f64 = cells[cells.len() - 3].parse().unwrap();
            assert_eq!(wo, w);
        }
    }
}
