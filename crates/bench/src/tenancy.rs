//! The noisy-neighbor tenancy sweep behind `cargo bench --bench tenancy`.
//!
//! One weighted victim (weight 4, a fixed closed-loop command stream)
//! shares a single PR slot with `tenants − 1` flooding aggressors
//! (weight 1 each), swept over scheduling policy × tenant count. Each
//! point reports the victim's closed-loop p99 against its solo baseline
//! (same workload, empty machine). The contract the `tenancy_scaling`
//! test pins: **weighted-fair bounds the victim's p99 at ≤ 2× solo**
//! (its weight buys a 4× command budget, so preemption gaps fall below
//! the p99 rank) **while round-robin does not** (the victim waits out
//! every aggressor's full slice, ms-scale gaps landing squarely in its
//! tail). All numbers are simulated and deterministic — the committed
//! `BENCH_tenancy.json` is byte-stable across machines.

use harmonia::cmd::{CommandCode, UnifiedControlKernel};
use harmonia::host::{DmaEngine, TenantHostDriver};
use harmonia::hw::device::catalog;
use harmonia::hw::ip::PcieDmaIp;
use harmonia::hw::resource::ResourceUsage;
use harmonia::hw::Vendor;
use harmonia::shell::pr::{MultiTenantRegion, TenantRole};
use harmonia::shell::sched::{TenantPolicy, TenantScheduler, DEFAULT_TENANT_SLICE_PS};
use harmonia::{MemoryDemand, RoleSpec, TailoredShell, UnifiedShell};

/// Tenant counts the sweep covers (victim + N−1 aggressors).
pub const TENANTS: [usize; 3] = [2, 4, 8];

/// Closed-loop commands the victim issues per point.
pub const VICTIM_CMDS: usize = 2000;

/// Commands each aggressor floods (enough to outlast the victim's
/// drain at every point).
pub const AGGRESSOR_CMDS: usize = 4000;

/// The victim's weight: buys a 4× per-slice command budget under
/// weighted-fair, nothing under round-robin.
pub const VICTIM_WEIGHT: u64 = 4;

/// One measured (policy, tenants) point of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct TenancyPoint {
    /// Scheduling policy (`rr` / `wfq`).
    pub policy: &'static str,
    /// Total tenants sharing the slot (including the victim).
    pub tenants: usize,
    /// Victim's closed-loop p99 on an empty machine, ps.
    pub victim_solo_p99_ps: u64,
    /// Victim's closed-loop p99 under contention, ps.
    pub victim_p99_ps: u64,
    /// `victim_p99_ps / victim_solo_p99_ps`.
    pub p99_ratio: f64,
    /// Scheduler slices the victim received before draining.
    pub victim_slices: u64,
    /// Tenant switches (PR save/load pairs) over the run.
    pub switches: u64,
    /// Slices cut short by kernel quota enforcement.
    pub quota_exhausted: u64,
    /// Simulated time until the victim drained, ps.
    pub sim_ps: u64,
}

impl TenancyPoint {
    /// The `POLICY/tenants=N` name this point publishes under.
    pub fn name(&self) -> String {
        format!("{}/tenants={}", self.policy, self.tenants)
    }
}

fn driver(policy: TenantPolicy, weights: &[u64]) -> TenantHostDriver {
    let dev = catalog::device_a();
    let unified = UnifiedShell::for_device(&dev);
    let role = RoleSpec::builder("tenancy-bench")
        .network_gbps(100)
        .network_ports(1)
        .memory(MemoryDemand::Ddr { channels: 1 })
        .build();
    let shell = TailoredShell::tailor(&unified, &role).unwrap();
    let region = MultiTenantRegion::partition(&shell, dev.capacity(), 1, 1024);
    let mut sched = TenantScheduler::new(region, 0, policy, DEFAULT_TENANT_SLICE_PS).unwrap();
    let logic = ResourceUsage::new(50_000, 80_000, 100, 20, 100);
    for (i, &w) in weights.iter().enumerate() {
        let name = if i == 0 {
            "victim".to_string()
        } else {
            format!("noisy{i}")
        };
        sched.register(TenantRole::new(name, logic, 8), w).unwrap();
    }
    let mut kernel = UnifiedControlKernel::new(64);
    kernel.attach_shell(shell.rbbs().iter().map(|r| r.as_ref()));
    let (gen, lanes) = dev.pcie().unwrap();
    let engine = DmaEngine::new(PcieDmaIp::new(Vendor::Xilinx, gen, lanes));
    TenantHostDriver::new(sched, engine, kernel)
}

fn health_reads(n: usize) -> Vec<harmonia::host::batch::CmdSpec> {
    (0..n)
        .map(|_| (0u8, 0u8, CommandCode::HealthRead, Vec::new()))
        .collect()
}

/// Runs slices until the victim (tenant 0) drains, returning its p99
/// and the run's accounting.
fn run_victim(d: &mut TenantHostDriver) -> (u64, u64, u64, u64, u64) {
    while d.stats(0).completed < VICTIM_CMDS as u64 {
        if d.run(1) == 0 {
            break;
        }
    }
    assert_eq!(
        d.stats(0).completed,
        VICTIM_CMDS as u64,
        "the victim must drain"
    );
    (
        d.latency(0).p99(),
        d.stats(0).slices,
        d.scheduler().switches(),
        d.quota_hits(),
        d.clock_ps(),
    )
}

/// Runs one sweep point. `policy` is explicit — the sweep never
/// consults `HARMONIA_TENANT_POLICY`, so bench numbers cannot drift
/// with the caller's environment.
pub fn run_point(policy: TenantPolicy, tenants: usize) -> TenancyPoint {
    assert!(tenants >= 2, "a noisy-neighbor point needs an aggressor");
    // Solo baseline: same victim workload, empty machine, same policy.
    let mut solo = driver(policy, &[VICTIM_WEIGHT]);
    solo.enqueue(0, health_reads(VICTIM_CMDS));
    let (victim_solo_p99_ps, ..) = run_victim(&mut solo);

    let mut weights = vec![1u64; tenants];
    weights[0] = VICTIM_WEIGHT;
    let mut d = driver(policy, &weights);
    d.enqueue(0, health_reads(VICTIM_CMDS));
    for t in 1..tenants {
        d.enqueue(t, health_reads(AGGRESSOR_CMDS));
    }
    let (victim_p99_ps, victim_slices, switches, quota_exhausted, sim_ps) =
        run_victim(&mut d);
    TenancyPoint {
        policy: policy.name(),
        tenants,
        victim_solo_p99_ps,
        victim_p99_ps,
        p99_ratio: victim_p99_ps as f64 / victim_solo_p99_ps as f64,
        victim_slices,
        switches,
        quota_exhausted,
        sim_ps,
    }
}

/// The full policy × tenant-count sweep, in declaration order.
pub fn sweep() -> Vec<TenancyPoint> {
    let grid: Vec<(TenantPolicy, usize)> = [TenantPolicy::RoundRobin, TenantPolicy::WeightedFair]
        .iter()
        .flat_map(|&p| TENANTS.iter().map(move |&t| (p, t)))
        .collect();
    harmonia::sim::exec::par_map(grid, |(p, t)| run_point(p, t))
}

/// Renders the sweep as the `BENCH_tenancy.json` artifact body
/// (hand-rolled, like the other simulated artifacts; byte-stable).
pub fn sweep_json(points: &[TenancyPoint]) -> String {
    let mut out = String::from("{\n  \"group\": \"tenancy\",\n");
    out.push_str("  \"unit\": \"simulated\",\n");
    out.push_str(&format!("  \"victim_cmds_per_point\": {VICTIM_CMDS},\n"));
    out.push_str(&format!("  \"victim_weight\": {VICTIM_WEIGHT},\n"));
    out.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"policy\": \"{}\", \"tenants\": {}, \
             \"victim_solo_p99_ps\": {}, \"victim_p99_ps\": {}, \
             \"p99_ratio\": {:.2}, \"victim_slices\": {}, \
             \"switches\": {}, \"quota_exhausted\": {}, \"sim_ps\": {}}}{}\n",
            p.name(),
            p.policy,
            p.tenants,
            p.victim_solo_p99_ps,
            p.victim_p99_ps,
            p.p99_ratio,
            p.victim_slices,
            p.switches,
            p.quota_exhausted,
            p.sim_ps,
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Pulls `p99_ratio` for one named point out of a rendered (or
/// committed) `BENCH_tenancy.json`.
pub fn ratio_from_json(json: &str, name: &str) -> Option<f64> {
    let needle = format!("\"name\": \"{name}\"");
    let line = json.lines().find(|l| l.contains(&needle))?;
    let field = "\"p99_ratio\": ";
    let start = line.find(field)? + field.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrips_ratios() {
        let points = vec![
            run_point(TenantPolicy::RoundRobin, 2),
            run_point(TenantPolicy::WeightedFair, 2),
        ];
        let json = sweep_json(&points);
        for p in &points {
            let got = ratio_from_json(&json, &p.name()).unwrap();
            assert!((got - p.p99_ratio).abs() < 0.01, "{got} vs {p:?}");
        }
        assert_eq!(ratio_from_json(&json, "rr/tenants=9"), None);
    }

    #[test]
    fn points_are_deterministic() {
        assert_eq!(
            run_point(TenantPolicy::WeightedFair, 4),
            run_point(TenantPolicy::WeightedFair, 4)
        );
    }
}
