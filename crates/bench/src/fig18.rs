//! Figure 18 — Harmonia vs Vitis / oneAPI / Coyote.

use harmonia::frameworks::{baseline_shell_resources, Framework, PerfFactors};
use harmonia::hw::device::catalog;
use harmonia::hw::ResourceKind;
use harmonia::metrics::report::{fmt_f64, fmt_pct};
use harmonia::metrics::Table;
use harmonia::shell::rbb::MemoryRbb;
use harmonia::shell::{MemoryDemand, RoleSpec};
use harmonia::sim::exec::par_sweep;
use harmonia::workloads::{AccessMode, MatMulWorkload, TcpWorkload, VectorDbWorkload};

fn bench_role() -> RoleSpec {
    RoleSpec::builder("benchmark")
        .network_gbps(100)
        .memory(MemoryDemand::Ddr { channels: 1 })
        .build()
}

/// Figure 18a: shell resource usage per framework (each on a device it
/// supports: Vitis/Coyote/Harmonia on A, oneAPI on D).
pub fn fig18a() -> Table {
    let mut t = Table::new(
        "Figure 18a — shell resource usage (% of device)",
        &["framework", "device", "LUT", "REG", "BRAM"],
    );
    let role = bench_role();
    let rows = par_sweep(Framework::ALL, |f| {
        let device = match f {
            Framework::OneApi => catalog::device_d(),
            _ => catalog::device_a(),
        };
        let usage = baseline_shell_resources(f, &device, &role)
            .expect("role deploys")
            .expect("framework supports its own device");
        [
            f.to_string(),
            device.name().to_string(),
            fmt_pct(usage.percent_of(device.capacity(), ResourceKind::Lut)),
            fmt_pct(usage.percent_of(device.capacity(), ResourceKind::Reg)),
            fmt_pct(usage.percent_of(device.capacity(), ResourceKind::Bram)),
        ]
    });
    for r in rows {
        t.row(r);
    }
    t
}

/// Figure 18b: matrix multiplication vs parallelism.
pub fn fig18b() -> Table {
    let mut t = Table::new(
        "Figure 18b — matrix multiplication (matrices/s)",
        &["parallelism", "Vitis", "oneAPI", "Coyote", "Harmonia"],
    );
    let w = MatMulWorkload::paper();
    let rows = par_sweep([4u32, 8, 16], |p| {
        let mut row = vec![format!("x{p}")];
        for f in Framework::ALL {
            let pf = PerfFactors::of(f);
            row.push(fmt_f64(pf.throughput(w.matrices_per_sec(p, pf.kernel_clock)), 0));
        }
        row
    });
    for r in rows {
        t.row(r);
    }
    t
}

/// Figure 18c: vector database access (million vectors/s by mode).
pub fn fig18c() -> Table {
    let mut t = Table::new(
        "Figure 18c — database access (Mvec/s)",
        &["mode", "Vitis", "oneAPI", "Coyote", "Harmonia"],
    );
    let rows = par_sweep(AccessMode::ALL, |mode| {
        let mut row = vec![mode.to_string()];
        for f in Framework::ALL {
            // Every framework drives the same DDR4 memory system. The
            // 4M-vector database dwarfs any on-chip cache, so Harmonia's
            // hot cache is bypassed here (its win is in the ablations);
            // the comparison isolates the interface plumbing, which is
            // where the paper's "no bubbles" claim lives.
            let mut mem = MemoryRbb::ddr(harmonia::hw::Vendor::Xilinx, 4, 2);
            mem.set_cache(false);
            let mut db = VectorDbWorkload::new(3, 4_000_000);
            let ops = db.accesses(mode, 0.2, 60_000);
            let n = ops.len() as u64;
            let r = mem.run_trace(ops);
            let pf = PerfFactors::of(f);
            row.push(fmt_f64(pf.throughput(r.ops_per_sec(n)) / 1e6, 1));
        }
        row
    });
    for r in rows {
        t.row(r);
    }
    t
}

/// Figure 18d: TCP transmission throughput/latency vs packet size.
pub fn fig18d() -> Table {
    let mut t = Table::new(
        "Figure 18d — TCP transmission",
        &[
            "pkt (B)",
            "Vitis (Gbps/us)",
            "oneAPI (Gbps/us)",
            "Coyote (Gbps/us)",
            "Harmonia (Gbps/us)",
        ],
    );
    let w = TcpWorkload::paper();
    let rows = par_sweep(TcpWorkload::PACKET_SIZES, |size| {
        let mut row = vec![size.to_string()];
        for f in Framework::ALL {
            let pf = PerfFactors::of(f);
            let tpt = pf.throughput(w.goodput_gbps(size));
            let lat = pf.latency_ps(w.latency_ps(size)) as f64 / 1e6;
            row.push(format!("{:.1}/{:.1}", tpt, lat));
        }
        row
    });
    for r in rows {
        t.row(r);
    }
    t
}

/// All Figure 18 tables.
pub fn generate() -> Vec<Table> {
    vec![fig18a(), fig18b(), fig18c(), fig18d()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(t: &Table, row: usize, col_from_end: usize) -> String {
        let text = t.to_string();
        let line = text.lines().nth(3 + row).unwrap().to_string();
        let cells: Vec<&str> = line.split_whitespace().collect();
        cells[cells.len() - 1 - col_from_end].to_string()
    }

    #[test]
    fn fig18a_harmonia_uses_least_lut() {
        let t = fig18a();
        let pct = |row: usize| -> f64 {
            cell(&t, row, 2).trim_end_matches('%').parse().unwrap()
        };
        let (vitis, coyote, harmonia) = (pct(0), pct(2), pct(3));
        for baseline in [vitis, coyote] {
            let saving = 100.0 * (1.0 - harmonia / baseline);
            assert!(
                (3.5..=35.0).contains(&saving),
                "saving {saving:.1}% vs baseline"
            );
        }
    }

    #[test]
    fn fig18b_scales_and_matches_across_frameworks() {
        let t = fig18b();
        let v = |row: usize, c: usize| -> f64 { cell(&t, row, c).parse().unwrap() };
        // Scaling with parallelism for Harmonia (col 0 from end).
        assert!(v(2, 0) > 3.5 * v(0, 0));
        // Frameworks comparable at the same clock (Vitis vs Harmonia).
        let ratio = v(1, 0) / v(1, 3);
        assert!((0.95..=1.05).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn fig18c_sequential_fastest_and_frameworks_comparable() {
        let t = fig18c();
        let v = |row: usize, c: usize| -> f64 { cell(&t, row, c).parse().unwrap() };
        let (rand, seq) = (v(0, 0), v(2, 0));
        assert!(seq > rand, "sequential {seq} <= random {rand}");
        // Harmonia (col 0) within 3% of Vitis (col 3) in every mode.
        for row in 0..3 {
            let ratio = v(row, 0) / v(row, 3);
            assert!((0.97..=1.03).contains(&ratio), "row {row}: ratio {ratio}");
        }
    }

    #[test]
    fn fig18d_throughput_and_latency_rise_with_size() {
        let t = fig18d();
        let parse = |row: usize| -> (f64, f64) {
            let s = cell(&t, row, 0);
            let (a, b) = s.split_once('/').unwrap();
            (a.parse().unwrap(), b.parse().unwrap())
        };
        let (t64, l64) = parse(0);
        let (t1500, l1500) = parse(2);
        assert!(t1500 > t64);
        assert!(l1500 > l64);
    }
}
