//! The batched-command-path sweep behind `cargo bench --bench cmdpath`.
//!
//! Sweeps doorbell batch size × submission-queue depth over a fixed
//! stream of device health polls and reports *simulated* throughput:
//! commands per second of modeled time, derived from the driver clock.
//! Simulated metrics are deterministic — the committed
//! `BENCH_cmdpath.json` is byte-stable across machines, unlike the
//! wall-clock artifacts of the other bench groups — which is what lets
//! the `cmdpath_scaling` test pin the batch=16 ≥ 2× batch=1 speedup.

use harmonia::cmd::{CommandCode, UnifiedControlKernel};
use harmonia::host::{BatchedCommandDriver, DmaEngine};
use harmonia::hw::device::catalog;
use harmonia::hw::ip::PcieDmaIp;
use harmonia::hw::Vendor;
use harmonia::sim::MetricsRegistry;

/// Doorbell batch sizes the sweep covers (1 = the legacy serial path).
pub const BATCHES: [usize; 4] = [1, 4, 16, 64];

/// Submission-queue depths the sweep covers. A depth below the batch
/// size caps the effective batch at the ring capacity.
pub const DEPTHS: [usize; 3] = [16, 64, 256];

/// Health polls issued per sweep point.
pub const COMMANDS: usize = 256;

/// One measured (batch, depth) point of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CmdpathPoint {
    /// Configured doorbell batch size.
    pub batch: usize,
    /// Configured SQ/CQ depth.
    pub depth: usize,
    /// Commands submitted (all must ack — the sweep runs faultless).
    pub commands: usize,
    /// Simulated time to drain the stream, ps.
    pub sim_ps: u64,
    /// Commands per second of simulated time.
    pub sim_cmds_per_sec: f64,
    /// DMA doorbell bursts rung (0 on the legacy batch=1 path), sourced
    /// from the `harmonia_dma_bursts_total` metrics counter.
    pub doorbells: u64,
    /// Completion interrupts raised after coalescing, sourced from the
    /// `harmonia_irq_interrupts_total` metrics counter.
    pub interrupts: u64,
    /// Completion events per interrupt (`harmonia_irq_events_total` /
    /// `harmonia_irq_interrupts_total`); 0 when nothing interrupted.
    pub irq_coalescing: f64,
}

impl CmdpathPoint {
    /// The `batch=B/depth=D` name this point publishes under.
    pub fn name(&self) -> String {
        format!("batch={}/depth={}", self.batch, self.depth)
    }
}

/// Runs one sweep point: `COMMANDS` health polls through a fresh driver.
pub fn run_point(batch: usize, depth: usize) -> CmdpathPoint {
    let dev = catalog::device_a();
    let (gen, lanes) = dev.pcie().unwrap();
    let engine = DmaEngine::new(PcieDmaIp::new(Vendor::Xilinx, gen, lanes));
    let kernel = UnifiedControlKernel::new(64);
    let mut drv = BatchedCommandDriver::with_depth(engine, kernel, batch, depth);
    let reg = MetricsRegistry::enabled();
    drv.set_metrics_registry(reg.clone());
    let cmds = (0..COMMANDS)
        .map(|_| (0u8, 0u8, CommandCode::HealthRead, Vec::new()))
        .collect();
    let results = drv.submit(cmds);
    assert!(
        results.iter().all(|r| r.is_ok()),
        "faultless sweep must ack everything"
    );
    let sim_ps = drv.clock_ps();
    let snap = reg.snapshot();
    let doorbells = snap.counter("harmonia_dma_bursts_total");
    debug_assert_eq!(doorbells, drv.inner().engine_ref().doorbells());
    let events = snap.counter("harmonia_irq_events_total");
    let interrupts = snap.counter("harmonia_irq_interrupts_total");
    CmdpathPoint {
        batch,
        depth,
        commands: COMMANDS,
        sim_ps,
        sim_cmds_per_sec: COMMANDS as f64 / (sim_ps as f64 * 1e-12),
        doorbells,
        interrupts,
        irq_coalescing: if interrupts == 0 {
            0.0
        } else {
            events as f64 / interrupts as f64
        },
    }
}

/// The full batch × depth sweep, in declaration order.
pub fn sweep() -> Vec<CmdpathPoint> {
    let grid: Vec<(usize, usize)> = BATCHES
        .iter()
        .flat_map(|&b| DEPTHS.iter().map(move |&d| (b, d)))
        .collect();
    harmonia::sim::exec::par_map(grid, |(b, d)| run_point(b, d))
}

/// Renders the sweep as the `BENCH_cmdpath.json` artifact body.
///
/// Hand-rolled like the testkit bench harness's `group_json`; all values
/// are simulated and therefore byte-stable.
pub fn sweep_json(points: &[CmdpathPoint]) -> String {
    let mut out = String::from("{\n  \"group\": \"cmdpath\",\n");
    out.push_str("  \"unit\": \"simulated\",\n");
    out.push_str(&format!("  \"commands_per_point\": {COMMANDS},\n"));
    out.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"batch\": {}, \"depth\": {}, \
             \"sim_ps\": {}, \"sim_cmds_per_sec\": {:.1}, \
             \"doorbells\": {}, \"interrupts\": {}, \
             \"irq_coalescing\": {:.2}}}{}\n",
            p.name(),
            p.batch,
            p.depth,
            p.sim_ps,
            p.sim_cmds_per_sec,
            p.doorbells,
            p.interrupts,
            p.irq_coalescing,
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Pulls `sim_cmds_per_sec` for one named point out of a rendered (or
/// committed) `BENCH_cmdpath.json`. Used by the scaling regression test
/// against the repo-root artifact.
pub fn rate_from_json(json: &str, name: &str) -> Option<f64> {
    let needle = format!("\"name\": \"{name}\"");
    let line = json.lines().find(|l| l.contains(&needle))?;
    let field = "\"sim_cmds_per_sec\": ";
    let start = line.find(field)? + field.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrips_rates() {
        let points = vec![run_point(1, 16), run_point(16, 16)];
        let json = sweep_json(&points);
        for p in &points {
            let got = rate_from_json(&json, &p.name()).unwrap();
            assert!((got - p.sim_cmds_per_sec).abs() < 0.1, "{got} vs {p:?}");
        }
        assert_eq!(rate_from_json(&json, "batch=9/depth=9"), None);
    }

    #[test]
    fn legacy_point_rings_no_doorbells() {
        let p = run_point(1, 64);
        assert_eq!(p.doorbells, 0, "batch=1 must pin the legacy path");
        assert_eq!(p.interrupts, 0);
        assert_eq!(p.irq_coalescing, 0.0);
    }

    #[test]
    fn batched_point_coalesces_completions() {
        let p = run_point(16, 64);
        // One completion event per command; the moderator batches them
        // at the doorbell batch size.
        assert!(p.interrupts > 0);
        assert!(
            (p.irq_coalescing - 16.0).abs() < 1e-9,
            "coalescing {} should match the batch",
            p.irq_coalescing
        );
    }
}
