//! Shared capture harness for the metrics plane (`metrics` binary,
//! equivalence tests, the committed `SLO_report.txt`).
//!
//! Runs the same seeded fault-campaign fleet as [`crate::trace_run`] —
//! resilient shell bring-up plus health polls and a monitoring sweep
//! under a scheduled link flap, a credit stall and background
//! drop/corrupt/irq-lost rates — but wired into the metrics plane:
//! every worker fills its own [`MetricsRegistry`] through
//! [`par_metered`], a [`MetricsScraper`] samples each campaign on the
//! simulated timeline, and the merged snapshot feeds the SLO evaluator.
//! Everything is simulated and merge order is pinned, so the exports are
//! byte-identical at any `HARMONIA_THREADS` under either engine.

use harmonia::cmd::{CommandCode, UnifiedControlKernel};
use harmonia::host::{CommandDriver, DmaEngine, DriverError};
use harmonia::hw::device::catalog;
use harmonia::hw::ip::PcieDmaIp;
use harmonia::hw::Vendor;
use harmonia::shell::{MemoryDemand, RoleSpec, TailoredShell, UnifiedShell};
use harmonia::sim::{
    evaluate_slos, par_metered, FaultKind, FaultPlan, FaultRates, FlightRecorder, MetricsRegistry,
    MetricsScraper, MetricsSnapshot, Slo, SloObjective, SloReport,
};

/// Everything one capture produces: the merged registry snapshot, one
/// report line per scenario, and both SLO evaluations.
#[derive(Clone, Debug)]
pub struct MetricsRun {
    /// Counters/gauges/histograms merged across every scenario's lane.
    pub snapshot: MetricsSnapshot,
    /// `seed=N <driver report> samples=K` transcript lines, in seed order.
    pub reports: Vec<String>,
    /// The production objectives ([`slos`]) — sized to pass under the
    /// fault campaign.
    pub slo: SloReport,
    /// The aspirational objectives ([`strict_slos`]) — deliberately
    /// tighter than a faulted fleet can meet, so the report always
    /// carries worked FAIL lines too.
    pub strict_slo: SloReport,
}

/// Production service-level objectives for the fault-campaign fleet.
pub fn slos() -> Vec<Slo> {
    vec![
        Slo {
            name: "cmd-latency-p99",
            objective: SloObjective::PercentileMaxPs {
                histogram: "harmonia_cmd_latency_ps",
                percentile: 99.0,
                max_ps: 100_000_000, // 100 µs: room for one full backoff ladder
            },
        },
        Slo {
            name: "replay-ratio",
            objective: SloObjective::RatioMaxPpm {
                numerator: "harmonia_kernel_replays_total",
                denominator: "harmonia_cmd_issued_total",
                max_ppm: 500_000, // half the attempts may be replays
            },
        },
        Slo {
            name: "give-up-ratio",
            objective: SloObjective::RatioMaxPpm {
                numerator: "harmonia_cmd_gave_up_total",
                denominator: "harmonia_cmd_issued_total",
                max_ppm: 100_000, // at most 10% of commands may be abandoned
            },
        },
    ]
}

/// Aspirational objectives: what a fault-free fleet would meet. The
/// committed report keeps these as the worked FAIL example.
pub fn strict_slos() -> Vec<Slo> {
    vec![
        Slo {
            name: "cmd-latency-p99-tight",
            objective: SloObjective::PercentileMaxPs {
                histogram: "harmonia_cmd_latency_ps",
                percentile: 99.0,
                max_ps: 1_000_000, // 1 µs: no retry fits
            },
        },
        Slo {
            name: "replay-ratio-tight",
            objective: SloObjective::RatioMaxPpm {
                numerator: "harmonia_kernel_replays_total",
                denominator: "harmonia_cmd_issued_total",
                max_ppm: 1_000,
            },
        },
    ]
}

/// Captures `scenarios` seeded fault campaigns into one merged snapshot.
///
/// Each seed drives an independent campaign on its own registry lane;
/// the fleet fans out over the scoped worker pool and merges in seed
/// order, so the result does not depend on the thread count.
pub fn capture(scenarios: u64) -> MetricsRun {
    let seeds: Vec<u64> = (0..scenarios).collect();
    let (reports, snapshot) = par_metered(seeds, |&seed, reg| scenario(seed, reg));
    let slo = evaluate_slos(&snapshot, &slos());
    let strict_slo = evaluate_slos(&snapshot, &strict_slos());
    MetricsRun {
        snapshot,
        reports,
        slo,
        strict_slo,
    }
}

/// Renders the committed `SLO_report.txt` body: the per-seed transcript,
/// then the production (pass) and aspirational (fail) evaluations.
pub fn render_slo_artifact(run: &MetricsRun) -> String {
    let mut out = String::from("harmonia SLO report — seeded fault-campaign fleet\n\n");
    for line in &run.reports {
        out.push_str(line);
        out.push('\n');
    }
    out.push_str("\nproduction objectives:\n");
    out.push_str(&run.slo.render());
    out.push_str("\naspirational objectives:\n");
    out.push_str(&run.strict_slo.render());
    out
}

/// One seeded campaign: bring up a tailored shell resiliently under the
/// fault plan, then poke health and sweep all module statistics, with a
/// scraper sampling the registry along the simulated timeline. Returns
/// the one-line report.
fn scenario(seed: u64, reg: &MetricsRegistry) -> String {
    let dev = catalog::device_a();
    let unified = UnifiedShell::for_device(&dev);
    let role = RoleSpec::builder("metrics-campaign")
        .network_gbps(100)
        .network_ports(1)
        .memory(MemoryDemand::Ddr { channels: 1 })
        .build();
    let mut shell = TailoredShell::tailor(&unified, &role).expect("role fits device A");
    let mut kernel = UnifiedControlKernel::new(64);
    kernel.attach_shell(shell.rbbs().iter().map(|r| r.as_ref()));
    let (gen, lanes) = dev.pcie().expect("device A has PCIe");
    let mut drv = CommandDriver::new(
        DmaEngine::new(PcieDmaIp::new(Vendor::Xilinx, gen, lanes)),
        kernel,
    );
    drv.set_metrics_registry(reg.clone());
    drv.set_fault_injector(
        FaultPlan::new()
            .at(0, FaultKind::LinkDown)
            .at(30_000_000, FaultKind::LinkUp)
            .at(50_000_000, FaultKind::PcieCreditStall { beats: 1_000 })
            .with_rates(
                seed,
                FaultRates {
                    cmd_drop: 0.05,
                    cmd_corrupt: 0.05,
                    irq_lost: 0.05,
                    ecc: 0.0,
                },
            )
            .injector(),
    );
    let mut scraper = MetricsScraper::from_env();
    drv.init_shell_resilient(&mut shell)
        .expect("bring-up converges under the plan");
    scraper.tick(reg, drv.clock_ps());
    for _ in 0..8 {
        match drv.cmd_raw_resilient(0, 0, CommandCode::HealthRead, Vec::new()) {
            Ok(_) | Err(DriverError::GaveUp { .. }) => {}
            Err(e) => panic!("campaign must converge, got {e}"),
        }
        scraper.tick(reg, drv.clock_ps());
    }
    let _ = drv
        .read_all_stats_resilient(&shell)
        .expect("monitoring sweep succeeds");
    scraper.tick(reg, drv.clock_ps());
    format!(
        "seed={seed} {} samples={}",
        drv.report(),
        scraper.samples().len()
    )
}

/// A campaign that cannot converge: the link goes down and never comes
/// back, so the driver burns its retry budget and gives up. Returns the
/// terminal error and the flight-recorder post-mortem it triggered —
/// the dump the acceptance tests grep for retry spans.
pub fn post_mortem_campaign() -> (DriverError, String) {
    let dev = catalog::device_a();
    let kernel = UnifiedControlKernel::new(64);
    let (gen, lanes) = dev.pcie().expect("device A has PCIe");
    let mut drv = CommandDriver::new(
        DmaEngine::new(PcieDmaIp::new(Vendor::Xilinx, gen, lanes)),
        kernel,
    );
    drv.set_metrics_registry(MetricsRegistry::enabled());
    drv.set_flight_recorder(FlightRecorder::with_capacity(64));
    drv.set_fault_injector(FaultPlan::new().at(0, FaultKind::LinkDown).injector());
    let err = drv
        .cmd_raw_resilient(0, 0, CommandCode::HealthRead, Vec::new())
        .expect_err("a permanently down link must exhaust the retry budget");
    let dump = drv
        .last_post_mortem()
        .expect("giving up with the recorder attached composes a post-mortem")
        .to_string();
    (err, dump)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_merges_lanes_and_evaluates_slos() {
        let run = capture(3);
        assert_eq!(run.reports.len(), 3);
        assert!(!run.snapshot.is_empty());
        assert!(run.snapshot.counter("harmonia_cmd_issued_total") > 0);
        assert!(
            run.snapshot.counter("harmonia_cmd_retries_total") > 0,
            "the link flap must force retries"
        );
        assert!(run.snapshot.histogram("harmonia_cmd_latency_ps").count() > 0);
        assert!(run.slo.pass(), "production objectives sized to pass");
        assert!(!run.strict_slo.pass(), "aspirational objectives must fail");
        let artifact = render_slo_artifact(&run);
        assert!(artifact.contains("PASS cmd-latency-p99"));
        assert!(artifact.contains("FAIL "));
    }

    #[test]
    fn post_mortem_names_the_command_and_its_retries() {
        let (err, dump) = post_mortem_campaign();
        assert!(matches!(err, DriverError::GaveUp { .. }));
        assert!(dump.starts_with("post-mortem: gave up on cmd"));
        assert!(dump.contains("cmd-retry"), "retry spans missing:\n{dump}");
        assert!(dump.contains("cmd-timeout"), "timeouts missing:\n{dump}");
    }
}
