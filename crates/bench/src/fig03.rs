//! Figure 3 — the motivation measurements.
//!
//! (a) shells dominate handcraft development workloads; (b) vendor IPs
//! differ in tens-to-hundreds of properties; (c) the heterogeneous fleet
//! grows every year; (d) register init sequences differ across shells.

use harmonia::apps::App;
use harmonia::hw::ip::{DdrIp, IpKind, MacIp, PcieDmaIp, VendorIp};
use harmonia::hw::Vendor;
use harmonia::metrics::report::fmt_f64;
use harmonia::metrics::workload::shell_role_split;
use harmonia::metrics::{FleetModel, Table};
use harmonia::shell::rbb::MigrationKind;
use harmonia::shell::{TailoredShell, UnifiedShell};
use harmonia::hw::device::catalog;

/// Figure 3a: fraction of handcraft development workload in shell vs role
/// for the five applications.
pub fn fig3a() -> Table {
    let mut t = Table::new(
        "Figure 3a — development workload split (fraction of handcraft LoC)",
        &["application", "shell", "role"],
    );
    let device = catalog::device_a();
    let unified = UnifiedShell::for_device(&device);
    // Capture-free factories (not boxed apps) so each worker builds its
    // own `Box<dyn App>` without requiring the trait object to be `Send`.
    type AppFactory = fn() -> Box<dyn App>;
    let apps: Vec<(&str, AppFactory)> = vec![
        ("Sec-Gateway", || {
            Box::new(harmonia::apps::SecGateway::new(
                harmonia::apps::sec_gateway::Action::Allow,
            ))
        }),
        ("Layer-4 LB", || Box::new(crate::roles::sample_lb())),
        ("Retrieval", || {
            Box::new(harmonia::apps::RetrievalEngine::synthetic(1, 16, 8))
        }),
        ("Board Test", || Box::new(harmonia::apps::BoardTest::new(1))),
        ("Host Network", || Box::new(harmonia::apps::HostNetwork::new(16))),
    ];
    let rows = harmonia::sim::exec::par_sweep(apps, |(name, make)| {
        let app = make();
        let shell = TailoredShell::tailor(&unified, &app.role_spec())
            .expect("evaluation roles deploy on device A");
        // Building the shell from scratch = all its countable code is
        // handcraft; that is the pre-Harmonia world Figure 3a describes.
        let shell_w = shell.workload(MigrationKind::CrossVendor);
        let mut full_shell = harmonia::metrics::ModuleWorkload::new("shell");
        full_shell.add("shell-logic", shell_w.countable_loc(), harmonia::metrics::Origin::Handcraft);
        let (s, r) = shell_role_split(&full_shell, &app.role_workload());
        [name.to_string(), fmt_f64(s, 2), fmt_f64(r, 2)]
    });
    for r in rows {
        t.row(r);
    }
    t
}

/// Figure 3b: interface/configuration differences between Xilinx and Intel
/// flavours of each common IP.
pub fn fig3b() -> Table {
    let mut t = Table::new(
        "Figure 3b — vendor-specific module differences (Xilinx vs Intel)",
        &["module", "interface diffs", "config diffs", "total"],
    );
    for kind in IpKind::FIG3B {
        let (x, i): (Box<dyn VendorIp>, Box<dyn VendorIp>) = match kind {
            IpKind::Ddr => (
                Box::new(DdrIp::new(Vendor::Xilinx, 4)),
                Box::new(DdrIp::new(Vendor::Intel, 4)),
            ),
            IpKind::Mac => (
                Box::new(MacIp::new(Vendor::Xilinx, 100)),
                Box::new(MacIp::new(Vendor::Intel, 100)),
            ),
            IpKind::Dma => (
                Box::new(PcieDmaIp::new(Vendor::Xilinx, 4, 16)),
                Box::new(PcieDmaIp::new(Vendor::Intel, 4, 16)),
            ),
            // The PCIe hard IP and the TLP layer have their own interface
            // specs distinct from the DMA engine built on them.
            IpKind::Pcie | IpKind::Tlp | IpKind::Hbm => {
                let d = if kind == IpKind::Pcie {
                    harmonia::hw::ip::pcie::pcie_hard_ip_spec(Vendor::Xilinx, 4, 16).diff(
                        &harmonia::hw::ip::pcie::pcie_hard_ip_spec(Vendor::Intel, 4, 16),
                    )
                } else {
                    harmonia::hw::ip::pcie::tlp_layer_spec(Vendor::Xilinx)
                        .diff(&harmonia::hw::ip::pcie::tlp_layer_spec(Vendor::Intel))
                };
                t.row([
                    kind.to_string(),
                    d.interface.to_string(),
                    d.configuration.to_string(),
                    d.total().to_string(),
                ]);
                continue;
            }
        };
        let d = x.native_interface().diff(&i.native_interface());
        t.row([
            kind.to_string(),
            d.interface.to_string(),
            d.configuration.to_string(),
            d.total().to_string(),
        ]);
    }
    t
}

/// Figure 3c: heterogeneous fleet evolution 2020–2024.
pub fn fig3c() -> Table {
    let mut t = Table::new(
        "Figure 3c — fleet evolution",
        &[
            "year",
            "new models",
            "new units",
            "total units",
            "live models",
        ],
    );
    for y in FleetModel::douyin_like().run(2024) {
        if y.year >= 2020 {
            t.row([
                y.year.to_string(),
                y.new_models.to_string(),
                y.new_units.to_string(),
                y.total_units.to_string(),
                y.live_models.to_string(),
            ]);
        }
    }
    t
}

/// Figure 3d: the module-initialization sequences of two shells.
pub fn fig3d() -> Table {
    let mut t = Table::new(
        "Figure 3d — MAC init sequences across shells",
        &["step", "shell A (Xilinx-style)", "shell B (Intel-style)"],
    );
    let a = MacIp::new(Vendor::Xilinx, 100).init_sequence();
    let b = MacIp::new(Vendor::Intel, 100).init_sequence();
    for i in 0..a.len().max(b.len()) {
        t.row([
            (i + 1).to_string(),
            a.get(i).map(|o| o.to_string()).unwrap_or_default(),
            b.get(i).map(|o| o.to_string()).unwrap_or_default(),
        ]);
    }
    t
}

/// All Figure 3 tables.
pub fn generate() -> Vec<Table> {
    vec![fig3a(), fig3b(), fig3c(), fig3d()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3a_shell_majority() {
        let t = fig3a();
        assert_eq!(t.len(), 5);
        // Every row: shell fraction within the paper's 0.66–0.87 band.
        let text = t.to_string();
        for line in text.lines().skip(3) {
            let cells: Vec<&str> = line.split_whitespace().collect();
            let shell: f64 = cells[cells.len() - 2].parse().unwrap();
            assert!((0.60..=0.90).contains(&shell), "row '{line}'");
        }
    }

    #[test]
    fn fig3b_differences_are_tens_to_hundreds() {
        let t = fig3b();
        assert_eq!(t.len(), 5);
        let text = t.to_string();
        for line in text.lines().skip(3) {
            let total: usize = line.split_whitespace().last().unwrap().parse().unwrap();
            assert!((20..=300).contains(&total), "row '{line}'");
        }
    }

    #[test]
    fn fig3c_grows() {
        let t = fig3c();
        assert_eq!(t.len(), 5); // 2020..=2024
    }

    #[test]
    fn fig3d_sequences_differ_in_length() {
        let t = fig3d();
        assert!(t.len() >= 7);
    }
}
