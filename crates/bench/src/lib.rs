//! Evaluation harness: one module per paper artifact.
//!
//! Every table and figure of the paper's evaluation section has a
//! generator here returning [`Table`](harmonia::metrics::Table)s with the
//! same rows/series the paper reports. The `fig*`/`table*` binaries print
//! them; `paper` prints everything; the testkit benches under `benches/`
//! time the underlying simulations.

pub mod ablation;
pub mod fig03;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod tables;

/// Prints a list of tables with blank lines between them.
pub fn print_all(tables: &[harmonia::metrics::Table]) {
    for t in tables {
        println!("{t}");
    }
}

/// The five evaluation applications with their per-device role specs.
pub mod roles {
    use harmonia::apps::{App, BoardTest, HostNetwork, Layer4Lb, RetrievalEngine, SecGateway};
    use harmonia::RoleSpec;

    /// `(name, role)` for the five applications, in the paper's order.
    pub fn all() -> Vec<(&'static str, RoleSpec)> {
        vec![
            ("Sec-Gateway", SecGateway::new(crate::roles::allow()).role_spec()),
            ("Layer-4 LB", sample_lb().role_spec()),
            ("Retrieval", RetrievalEngine::synthetic(1, 16, 8).role_spec()),
            ("Board Test", BoardTest::new(1).role_spec()),
            ("Host Network", HostNetwork::new(16).role_spec()),
        ]
    }

    pub(crate) fn allow() -> harmonia::apps::sec_gateway::Action {
        harmonia::apps::sec_gateway::Action::Allow
    }

    pub(crate) fn sample_lb() -> Layer4Lb {
        Layer4Lb::new(
            (0..4)
                .map(|id| harmonia::apps::l4lb::Backend { id, weight: 1 })
                .collect(),
            1024,
        )
    }
}
