//! Evaluation harness: one module per paper artifact.
//!
//! Every table and figure of the paper's evaluation section has a
//! generator here returning [`Table`](harmonia::metrics::Table)s with the
//! same rows/series the paper reports. The `fig*`/`table*` binaries print
//! them; `paper` prints everything; the testkit benches under `benches/`
//! time the underlying simulations.

pub mod ablation;
pub mod cmdpath;
pub mod fig03;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fleet;
pub mod metrics_run;
pub mod tables;
pub mod tenancy;
pub mod trace_run;

/// Every table of the evaluation, in the paper's order.
///
/// Each artifact's generator is independent, so they fan out across the
/// scoped worker pool ([`harmonia::sim::exec`]); ordered reassembly keeps
/// the output byte-identical to running the generators one by one.
pub fn all_tables() -> Vec<harmonia::metrics::Table> {
    type Generator = fn() -> Vec<harmonia::metrics::Table>;
    let generators: Vec<Generator> = vec![
        fig03::generate,
        fig10::generate,
        fig11::generate,
        fig12::generate,
        fig13::generate,
        fig14::generate,
        fig15::generate,
        fig16::generate,
        fig17::generate,
        fig18::generate,
        tables::generate,
        ablation::generate,
    ];
    harmonia::sim::exec::par_map(generators, |g| g())
        .into_iter()
        .flatten()
        .collect()
}

/// Prints a list of tables with blank lines between them.
///
/// Rendering is a pure per-table job, so it sweeps across the worker
/// pool; printing stays sequential and in order.
pub fn print_all(tables: &[harmonia::metrics::Table]) {
    for rendered in harmonia::sim::exec::par_sweep(tables, |t| t.to_string()) {
        println!("{rendered}");
    }
}

/// The five evaluation applications with their per-device role specs.
pub mod roles {
    use harmonia::apps::{App, BoardTest, HostNetwork, Layer4Lb, RetrievalEngine, SecGateway};
    use harmonia::RoleSpec;

    /// `(name, role)` for the five applications, in the paper's order.
    pub fn all() -> Vec<(&'static str, RoleSpec)> {
        vec![
            ("Sec-Gateway", SecGateway::new(crate::roles::allow()).role_spec()),
            ("Layer-4 LB", sample_lb().role_spec()),
            ("Retrieval", RetrievalEngine::synthetic(1, 16, 8).role_spec()),
            ("Board Test", BoardTest::new(1).role_spec()),
            ("Host Network", HostNetwork::new(16).role_spec()),
        ]
    }

    pub(crate) fn allow() -> harmonia::apps::sec_gateway::Action {
        harmonia::apps::sec_gateway::Action::Allow
    }

    pub(crate) fn sample_lb() -> Layer4Lb {
        Layer4Lb::new(
            (0..4)
                .map(|id| harmonia::apps::l4lb::Backend { id, weight: 1 })
                .collect(),
            1024,
        )
    }
}
