//! Ablation studies for the design decisions DESIGN.md calls out.
//!
//! Not in the paper, but each isolates one Harmonia mechanism and measures
//! what it buys: the pipelined (vs store-and-forward) wrapper, the Memory
//! RBB ex-functions, the active-queue scheduler, and control-queue
//! isolation.

use harmonia::host::DmaEngine;
use harmonia::hw::ip::dram::MemOp;
use harmonia::hw::ip::{MacIp, PcieDmaIp};
use harmonia::hw::Vendor;
use harmonia::metrics::report::fmt_f64;
use harmonia::metrics::Table;
use harmonia::shell::rbb::{HostRbb, MemoryRbb};
use harmonia::sim::exec::par_sweep;
use harmonia::workloads::{AccessPattern, MemTraceGen};

/// Ablation 1: pipelined wrapper vs a store-and-forward converter that
/// buffers a whole packet before re-emitting it.
pub fn ablation_wrapper() -> Table {
    let mut t = Table::new(
        "Ablation — wrapper conversion strategy (100G MAC, Gbps)",
        &["pkt (B)", "pipelined", "store-and-forward"],
    );
    let mac = MacIp::new(Vendor::Xilinx, 100);
    let rows = par_sweep([64u32, 256, 1024], |size| {
        let pipelined = mac.throughput_gbps(size);
        // Store-and-forward: the converter holds each packet for its full
        // serialization before forwarding, halving effective occupancy on
        // back-to-back packets (receive of packet N+1 overlaps only the
        // buffer drain, not the convert stage).
        let beats = f64::from(size.div_ceil(64));
        let saf = pipelined * beats / (beats + f64::from(size.div_ceil(64)));
        [size.to_string(), fmt_f64(pipelined, 2), fmt_f64(saf, 2)]
    });
    for r in rows {
        t.row(r);
    }
    t
}

/// Ablation 2: Memory RBB ex-functions on/off.
pub fn ablation_memory() -> Table {
    let mut t = Table::new(
        "Ablation — Memory RBB ex-functions (DDR4 x2, GB/s)",
        &["pattern", "both on", "no cache", "no interleave", "neither"],
    );
    let cases = [
        ("sequential", AccessPattern::Sequential),
        ("fixed", AccessPattern::Fixed),
        ("random", AccessPattern::Random),
    ];
    let rows = par_sweep(cases, |(label, pattern)| {
        let mut row = vec![label.to_string()];
        for (cache, interleave) in [(true, true), (false, true), (true, false), (false, false)] {
            let mut mem = MemoryRbb::ddr(Vendor::Xilinx, 4, 2);
            mem.set_cache(cache);
            mem.set_interleave(interleave);
            let ops = MemTraceGen::new(11).trace(pattern, false, 64, 40_000);
            let r = mem.run_trace(ops);
            row.push(fmt_f64(r.bandwidth_gbs(), 1));
        }
        row
    });
    for r in rows {
        t.row(r);
    }
    t
}

/// Ablation 3: active-ring vs naive full-scan scheduling.
pub fn ablation_scheduler() -> Table {
    let mut t = Table::new(
        "Ablation — Host RBB queue scheduling (slots examined / dequeue)",
        &["active queues", "active-ring", "naive scan"],
    );
    let rows = par_sweep([2u16, 16, 128], |active| {
        let mut fast = HostRbb::with_link(Vendor::Xilinx, 4, 8);
        let mut slow = HostRbb::with_link(Vendor::Xilinx, 4, 8);
        for h in [&mut fast, &mut slow] {
            for q in 0..active {
                let queue = q * 7 % HostRbb::QUEUES;
                h.activate(queue).unwrap();
                for _ in 0..16 {
                    h.enqueue(queue, 64).unwrap();
                }
            }
        }
        let mut deq_fast = 0u64;
        while fast.schedule().is_some() {
            deq_fast += 1;
        }
        let mut deq_slow = 0u64;
        while slow.schedule_naive().is_some() {
            deq_slow += 1;
        }
        [
            active.to_string(),
            fmt_f64(fast.sched_visits() as f64 / deq_fast as f64, 2),
            fmt_f64(slow.sched_visits() as f64 / deq_slow as f64, 2),
        ]
    });
    for r in rows {
        t.row(r);
    }
    t
}

/// Ablation 4: command latency with and without control-queue isolation
/// under data-path load.
pub fn ablation_ctrl_isolation() -> Table {
    let mut t = Table::new(
        "Ablation — control-queue isolation (command latency, us)",
        &["data backlog (MB)", "isolated", "shared queue"],
    );
    let rows = par_sweep([0u64, 10, 100], |backlog_mb| {
        let mut iso = DmaEngine::new(PcieDmaIp::new(Vendor::Xilinx, 4, 8));
        let mut shared = DmaEngine::new(PcieDmaIp::new(Vendor::Xilinx, 4, 8));
        shared.set_ctrl_isolated(false);
        iso.enqueue_data(backlog_mb * 1_000_000);
        shared.enqueue_data(backlog_mb * 1_000_000);
        [
            backlog_mb.to_string(),
            fmt_f64(iso.command_latency_ps(64) as f64 / 1e6, 2),
            fmt_f64(shared.command_latency_ps(64) as f64 / 1e6, 2),
        ]
    });
    for r in rows {
        t.row(r);
    }
    t
}

/// Ablation 5: hot-cache benefit on a cache-friendly working set.
pub fn ablation_hot_cache_hits() -> Table {
    let mut t = Table::new(
        "Ablation — hot cache on a 512 KiB working set (GB/s)",
        &["pass", "cache on", "cache off"],
    );
    // Deliberately serial: the cache warms across passes, so each row
    // depends on the previous one — a `par_sweep` here would be wrong.
    let mut on = MemoryRbb::ddr(Vendor::Xilinx, 4, 2);
    let mut off = MemoryRbb::ddr(Vendor::Xilinx, 4, 2);
    off.set_cache(false);
    for pass in 1..=3 {
        let ops = || (0..8_192u64).map(|i| MemOp::read(i * 64, 64));
        let r_on = on.run_trace(ops());
        let r_off = off.run_trace(ops());
        t.row([
            pass.to_string(),
            fmt_f64(r_on.bandwidth_gbs(), 1),
            fmt_f64(r_off.bandwidth_gbs(), 1),
        ]);
    }
    t
}

/// Validation: the beat-level datapath simulation against the analytic
/// line-rate model (the Figure 10a claims, verified by cycle simulation).
pub fn ablation_datapath_sim() -> Table {
    use harmonia::shell::DatapathSim;
    use harmonia::sim::Freq;
    let mut t = Table::new(
        "Validation — cycle-simulated datapath vs analytic model (100G)",
        &["pkt (B)", "analytic (Gbps)", "simulated (Gbps)", "sim latency (ns)"],
    );
    let mac = || MacIp::new(Vendor::Xilinx, 100);
    let rows = par_sweep([64u32, 256, 1024], |size| {
        let sim = DatapathSim::new(mac(), Freq::khz(322_265), 512);
        let report = sim.run(size, 1_500);
        [
            size.to_string(),
            fmt_f64(mac().throughput_gbps(size), 2),
            fmt_f64(report.throughput.gbps(), 2),
            fmt_f64(report.latency.mean_ns(), 1),
        ]
    });
    for r in rows {
        t.row(r);
    }
    t
}

/// Ablation 6: RDMA go-back-N window size vs loss — the window that
/// maximizes goodput shrinks as loss grows.
pub fn ablation_rdma_window() -> Table {
    use harmonia::shell::rbb::rdma::{QueuePair, RdmaConfig};
    use harmonia::sim::SplitMix64;
    let mut t = Table::new(
        "Ablation — RDMA window vs loss (goodput efficiency)",
        &["window", "loss 0%", "loss 1%", "loss 10%"],
    );
    let rows = par_sweep([8usize, 32, 128], |window| {
        let mut row = vec![window.to_string()];
        for loss in [0.0, 0.01, 0.10] {
            let mut qp = QueuePair::new(RdmaConfig {
                mtu: 4096,
                window,
                timeout_slots: 8,
            });
            for _ in 0..200 {
                qp.post_send(16_384).unwrap();
            }
            let mut rng = SplitMix64::new(17);
            qp.run_to_completion(&mut rng, loss, 10_000_000)
                .expect("completes");
            row.push(fmt_f64(qp.stats().efficiency(), 3));
        }
        row
    });
    for r in rows {
        t.row(r);
    }
    t
}

/// All ablation tables.
pub fn generate() -> Vec<Table> {
    vec![
        ablation_wrapper(),
        ablation_memory(),
        ablation_scheduler(),
        ablation_ctrl_isolation(),
        ablation_hot_cache_hits(),
        ablation_datapath_sim(),
        ablation_rdma_window(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn last_two(t: &Table, row: usize) -> (f64, f64) {
        let text = t.to_string();
        let line = text.lines().nth(3 + row).unwrap();
        let cells: Vec<&str> = line.split_whitespace().collect();
        (
            cells[cells.len() - 2].parse().unwrap(),
            cells[cells.len() - 1].parse().unwrap(),
        )
    }

    #[test]
    fn pipelined_wrapper_beats_store_and_forward() {
        let t = ablation_wrapper();
        for row in 0..t.len() {
            let (pipelined, saf) = last_two(&t, row);
            assert!(pipelined > saf);
        }
    }

    #[test]
    fn scheduler_ablation_widens_with_sparsity() {
        let t = ablation_scheduler();
        let (ring2, naive2) = last_two(&t, 0);
        assert!(ring2 < naive2);
        let (ring128, naive128) = last_two(&t, 2);
        assert!(ring128 <= ring2 * 2.0);
        assert!(naive2 / ring2 > naive128 / ring128 * 0.9);
    }

    #[test]
    fn isolation_flat_shared_grows() {
        let t = ablation_ctrl_isolation();
        let (iso0, shared0) = last_two(&t, 0);
        let (iso100, shared100) = last_two(&t, 2);
        assert_eq!(iso0, iso100);
        assert!(shared100 > 10.0 * shared0);
    }

    #[test]
    fn hot_cache_wins_after_warmup() {
        let t = ablation_hot_cache_hits();
        let (on3, off3) = last_two(&t, 2);
        assert!(on3 > off3, "cache on {on3} <= off {off3}");
    }

    #[test]
    fn memory_ablation_has_12_cells() {
        let t = ablation_memory();
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn rdma_window_ablation_shape() {
        let t = ablation_rdma_window();
        // Lossless: efficiency 1.0 regardless of window.
        let text = t.to_string();
        let first: Vec<&str> = text.lines().nth(3).unwrap().split_whitespace().collect();
        assert_eq!(first[1], "1.000");
        // At 10% loss, the small window beats the large one.
        let small: f64 = text.lines().nth(3).unwrap().split_whitespace().last().unwrap().parse().unwrap();
        let large: f64 = text.lines().nth(5).unwrap().split_whitespace().last().unwrap().parse().unwrap();
        assert!(small > large, "small-window {small} <= large-window {large}");
    }

    #[test]
    fn simulated_datapath_matches_analytic() {
        let t = ablation_datapath_sim();
        for row in 0..t.len() {
            let (analytic, simulated) = {
                let text = t.to_string();
                let line = text.lines().nth(3 + row).unwrap();
                let cells: Vec<&str> = line.split_whitespace().collect();
                (
                    cells[cells.len() - 3].parse::<f64>().unwrap(),
                    cells[cells.len() - 2].parse::<f64>().unwrap(),
                )
            };
            let err = (simulated - analytic).abs() / analytic;
            assert!(err < 0.03, "row {row}: {simulated} vs {analytic}");
        }
    }
}
