//! Tables 1, 3 and 4 of the paper.

use harmonia::frameworks::{CapabilityMatrix, Framework};
use harmonia::host::reg_driver::RegisterDriver;
use harmonia::hw::device::catalog;
use harmonia::metrics::Table;
use harmonia::shell::rbb::RbbKind;
use harmonia::shell::{MemoryDemand, RoleSpec, TailoredShell, UnifiedShell};
use harmonia::sim::exec::par_sweep;

/// Table 1 — framework capability comparison.
pub fn table1() -> Table {
    let mut t = Table::new(
        "Table 1 — framework capabilities",
        &[
            "framework",
            "heterogeneity",
            "unified shell",
            "portable role",
            "consistent host IF",
        ],
    );
    let rows = par_sweep(Framework::ALL, |f| {
        let m = CapabilityMatrix::of(f);
        [
            f.to_string(),
            m.heterogeneity.to_string(),
            m.unified_shell.to_string(),
            m.portable_role.to_string(),
            m.consistent_host_if.to_string(),
        ]
    });
    for r in rows {
        t.row(r);
    }
    t
}

/// Table 3 — devices supported by each framework.
pub fn table3() -> Table {
    let mut t = Table::new(
        "Table 3 — device support",
        &["device class", "Vitis", "oneAPI", "Coyote", "Harmonia"],
    );
    let rows = [
        ("Intel FPGAs (D)", catalog::device_d()),
        ("Xilinx FPGAs (A)", catalog::device_a()),
        ("In-house Xilinx-die (B)", catalog::device_b()),
        ("In-house Intel-die (C)", catalog::device_c()),
    ];
    let rendered = par_sweep(rows, |(label, device)| {
        let mut row = vec![label.to_string()];
        for f in Framework::ALL {
            row.push(if f.supports(&device) { "yes" } else { "no" }.to_string());
        }
        row
    });
    for r in rendered {
        t.row(r);
    }
    t
}

/// The shell Table 4 measures against: one Network, one Memory, one Host
/// module on device A.
fn table4_shell() -> TailoredShell {
    let unified = UnifiedShell::for_device(&catalog::device_a());
    let role = RoleSpec::builder("table4")
        .network_gbps(100)
        .network_ports(1)
        .memory(MemoryDemand::Ddr { channels: 1 })
        .queues(192) // 3 queue contexts programmed -> the Table 4 host row
        .build();
    TailoredShell::tailor(&unified, &role).expect("table-4 shell deploys")
}

/// Table 4 — register operations vs commands per host-interaction class.
pub fn table4() -> Table {
    let shell = table4_shell();
    let mut t = Table::new(
        "Table 4 — host software configuration surface",
        &["interaction", "registers", "commands", "reduction"],
    );
    // Monitoring statistics: read every monitor register vs one StatsRead
    // per module + HealthRead.
    let mon_regs = RegisterDriver::monitoring_script(&shell).len();
    let mon_cmds = shell.rbbs().len() + 1;
    t.row([
        "Monitoring statistics".to_string(),
        mon_regs.to_string(),
        mon_cmds.to_string(),
        format!("{:.0}x", mon_regs as f64 / mon_cmds as f64),
    ]);
    // Network initialization.
    let net = shell
        .rbbs_of(RbbKind::Network)
        .next()
        .expect("shell has a network RBB");
    let net_regs = RegisterDriver::network_init_ops(net, 0x10000).len();
    let net_cmds = 5; // reset, init, status-write, table-write, status-read
    t.row([
        "Network initialization".to_string(),
        net_regs.to_string(),
        net_cmds.to_string(),
        format!("{:.0}x", net_regs as f64 / f64::from(net_cmds)),
    ]);
    // Host interaction configuration.
    let host = shell
        .rbbs_of(RbbKind::Host)
        .next()
        .expect("shell has a host RBB");
    let host_regs = RegisterDriver::host_config_ops(host, 0x30000).len();
    let host_cmds = 4; // reset, init, status-write, status-read
    t.row([
        "Host interaction config".to_string(),
        host_regs.to_string(),
        host_cmds.to_string(),
        format!("{:.0}x", host_regs as f64 / f64::from(host_cmds)),
    ]);
    t
}

/// All tables.
pub fn generate() -> Vec<Table> {
    vec![table1(), table3(), table4()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_only_harmonia_full_yes() {
        let text = table1().to_string();
        let harmonia_line = text
            .lines()
            .find(|l| l.starts_with("Harmonia"))
            .unwrap();
        assert_eq!(harmonia_line.matches("yes").count(), 4);
    }

    #[test]
    fn table3_matches_paper() {
        let text = table3().to_string();
        let intel = text.lines().find(|l| l.contains("Intel FPGAs")).unwrap();
        assert!(intel.contains("no")); // Vitis
        let inhouse = text
            .lines()
            .find(|l| l.contains("In-house Xilinx"))
            .unwrap();
        // Only Harmonia says yes on in-house boards.
        assert_eq!(inhouse.matches("yes").count(), 1);
    }

    #[test]
    fn table4_matches_paper_counts() {
        let text = table4().to_string();
        let mon = text.lines().find(|l| l.contains("Monitoring")).unwrap();
        assert!(mon.contains("84") && mon.contains("21x"), "'{mon}'");
        let net = text.lines().find(|l| l.contains("Network init")).unwrap();
        assert!(net.contains("115") && net.contains("23x"), "'{net}'");
        let host = text.lines().find(|l| l.contains("Host interaction")).unwrap();
        assert!(host.contains("60") && host.contains("15x"), "'{host}'");
    }
}
