//! Figure 13 — the command-based interface reduces software modifications.
//!
//! Each application migrates from device C to device D. Device C has no
//! DRAM, so applications that can exploit device D's DDR channel pick it up
//! on migration — the realistic worst case for the register interface
//! (every module behind the new one rebases) and a two-command change for
//! the command interface.

use harmonia::host::migration_report;
use harmonia::hw::device::catalog;
use harmonia::metrics::report::fmt_x;
use harmonia::metrics::Table;
use harmonia::shell::{MemoryDemand, RoleSpec};
use harmonia::sim::exec::par_sweep;

/// `(name, role on C, role on D)` per application.
pub fn migration_roles() -> Vec<(&'static str, RoleSpec, RoleSpec)> {
    let pair = |name: &'static str, ports: u32, queues: u16, multicast: bool| {
        let base = || {
            let mut b = RoleSpec::builder(name)
                .network_gbps(100)
                .network_ports(ports)
                .queues(queues);
            if multicast {
                b = b.multicast();
            }
            b
        };
        (
            name,
            base().build(),
            base().memory(MemoryDemand::Ddr { channels: 1 }).build(),
        )
    };
    vec![
        pair("Sec-Gateway", 2, 64, false),
        pair("Layer-4 LB", 2, 128, false),
        pair("Retrieval", 1, 256, false),
        pair("Board Test", 2, 16, false),
        pair("Host Network", 2, 256, true),
    ]
}

/// Register vs command modifications per application, device C → D.
pub fn fig13() -> Table {
    let c = catalog::device_c();
    let d = catalog::device_d();
    let mut t = Table::new(
        "Figure 13 — software modifications migrating C → D",
        &["application", "register mods", "command mods", "reduction"],
    );
    let rows = par_sweep(migration_roles(), |(name, on_c, on_d)| {
        let r = migration_report(&c, &on_c, &d, &on_d).expect("roles deploy on C and D");
        [
            name.to_string(),
            r.reg_modifications.to_string(),
            r.cmd_modifications.to_string(),
            fmt_x(r.reduction_factor()),
        ]
    });
    for r in rows {
        t.row(r);
    }
    t
}

/// All Figure 13 tables.
pub fn generate() -> Vec<Table> {
    vec![fig13()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reductions_are_large() {
        let t = fig13();
        assert_eq!(t.len(), 5);
        for line in t.to_string().lines().skip(3) {
            let cells: Vec<&str> = line.split_whitespace().collect();
            let regs: usize = cells[cells.len() - 3].parse().unwrap();
            let cmds: usize = cells[cells.len() - 2].parse().unwrap();
            assert!(regs > 40, "register mods {regs} too small in '{line}'");
            assert!(cmds <= 8, "command mods {cmds} too large in '{line}'");
            let x: f64 = cells
                .last()
                .unwrap()
                .trim_end_matches('x')
                .parse()
                .unwrap();
            assert!((20.0..=250.0).contains(&x), "reduction {x} out of band");
        }
    }
}
