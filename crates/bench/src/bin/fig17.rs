//! Regenerates the paper's Figure 17 artifacts.
fn main() {
    harmonia_bench::print_all(&harmonia_bench::fig17::generate());
}
