//! Regenerates the paper's Figure 14 artifacts.
fn main() {
    harmonia_bench::print_all(&harmonia_bench::fig14::generate());
}
