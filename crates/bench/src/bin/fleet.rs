//! `fleet` — run one fleet campaign and export its metrics surface.
//!
//! Runs a best-fit campaign (sized by `HARMONIA_FLEET_DEVICES` /
//! `HARMONIA_FLEET_POLICY`, default 2048 devices / best-fit) with one
//! kill-device fault at the diurnal peak, publishes the result into a
//! metrics registry, and prints:
//!
//! ```sh
//! cargo run --bin fleet              # Prometheus text exposition
//! cargo run --bin fleet -- --slo     # fleet SLO report
//! cargo run --bin fleet -- --report  # rendered campaign report
//! ```
//!
//! All values are simulated, so every mode is byte-identical at any
//! `HARMONIA_THREADS` under either `HARMONIA_ENGINE`.

use harmonia::fleet::control::fleet_slos;
use harmonia::fleet::{FleetController, FleetSpec};
use harmonia::sim::metrics::{evaluate_slos, MetricsRegistry};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let spec = FleetSpec::from_env();
    let mut fleet = FleetController::new(spec).expect("fleet placement must be feasible");
    let victim = fleet.assignments()[0].device;
    fleet.kill_device(victim, harmonia_bench::fleet::KILL_TICK);
    let report = fleet.run();
    if args.iter().any(|a| a == "--report") {
        print!("{}", report.render());
        return;
    }
    let registry = MetricsRegistry::enabled();
    report.publish_metrics(&registry);
    let snapshot = registry.snapshot();
    if args.iter().any(|a| a == "--slo") {
        print!("{}", evaluate_slos(&snapshot, &fleet_slos()).render());
    } else {
        print!("{}", snapshot.export_prometheus());
    }
}
