//! Regenerates the paper's Figure 12 artifacts.
fn main() {
    harmonia_bench::print_all(&harmonia_bench::fig12::generate());
}
