//! Regenerates the paper's Figure 16 artifacts.
fn main() {
    harmonia_bench::print_all(&harmonia_bench::fig16::generate());
}
