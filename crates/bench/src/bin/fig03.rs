//! Regenerates the paper's Figure 03 artifacts.
fn main() {
    harmonia_bench::print_all(&harmonia_bench::fig03::generate());
}
