//! Regenerates Table 4 (register vs command configuration surface).
fn main() {
    println!("{}", harmonia_bench::tables::table4());
}
