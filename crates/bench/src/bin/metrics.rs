//! `metrics` — export a deterministic metrics-plane capture.
//!
//! Runs the seeded fault-campaign fleet from
//! [`harmonia_bench::metrics_run`] and prints the merged snapshot:
//!
//! ```sh
//! cargo run --bin metrics              # Prometheus text exposition
//! cargo run --bin metrics -- --json    # compact JSON snapshot
//! cargo run --bin metrics -- --slo     # SLO report (pass + fail cases)
//! cargo run --bin metrics -- --flight  # flight-recorder post-mortem demo
//! ```
//!
//! All values are simulated, so every mode is byte-identical at any
//! `HARMONIA_THREADS` under either `HARMONIA_ENGINE`.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--flight") {
        let (err, dump) = harmonia_bench::metrics_run::post_mortem_campaign();
        println!("terminal error: {err}");
        print!("{dump}");
        return;
    }
    let run = harmonia_bench::metrics_run::capture(4);
    if args.iter().any(|a| a == "--slo") {
        print!("{}", harmonia_bench::metrics_run::render_slo_artifact(&run));
    } else if args.iter().any(|a| a == "--json") {
        print!("{}", run.snapshot.export_json());
    } else {
        print!("{}", run.snapshot.export_prometheus());
    }
}
