//! Runs the ablation studies of DESIGN.md.
fn main() {
    harmonia_bench::print_all(&harmonia_bench::ablation::generate());
}
