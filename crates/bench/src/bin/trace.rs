//! `trace` — export a deterministic observability capture.
//!
//! Runs the seeded fault-campaign fleet from
//! [`harmonia_bench::trace_run`] and prints the merged timeline:
//!
//! ```sh
//! cargo run --bin trace > trace.json   # Chrome/Perfetto trace-event JSON
//! cargo run --bin trace -- --text      # plain-text timeline + histogram
//! ```
//!
//! Load `trace.json` at <https://ui.perfetto.dev> (or `chrome://tracing`);
//! each scenario occupies its own track (`tid` = lane). The output is
//! byte-identical at any `HARMONIA_THREADS` setting.

fn main() {
    let text = std::env::args().any(|a| a == "--text");
    let run = harmonia_bench::trace_run::capture(4);
    if text {
        for line in &run.reports {
            println!("{line}");
        }
        println!();
        print!("{}", run.trace.export_text());
        println!();
        println!("command latency (ps): {}", run.histogram);
        print!("{}", run.histogram.render());
    } else {
        println!("{}", run.trace.export_perfetto());
    }
}
