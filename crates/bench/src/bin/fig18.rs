//! Regenerates the paper's Figure 18 artifacts.
fn main() {
    harmonia_bench::print_all(&harmonia_bench::fig18::generate());
}
