//! Regenerates Table 1 (framework capabilities).
fn main() {
    println!("{}", harmonia_bench::tables::table1());
}
