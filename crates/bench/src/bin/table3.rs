//! Regenerates Table 3 (device support).
fn main() {
    println!("{}", harmonia_bench::tables::table3());
}
