//! Regenerates every table and figure of the evaluation in one run.
//!
//! Independent artifacts are generated concurrently (see
//! `harmonia::sim::exec`); set `HARMONIA_THREADS=1` for the exact serial
//! path. Output is byte-identical at any thread count.
fn main() {
    harmonia_bench::print_all(&harmonia_bench::all_tables());
}
