//! Regenerates every table and figure of the evaluation in one run.
fn main() {
    let mut all = Vec::new();
    all.extend(harmonia_bench::fig03::generate());
    all.extend(harmonia_bench::fig10::generate());
    all.extend(harmonia_bench::fig11::generate());
    all.extend(harmonia_bench::fig12::generate());
    all.extend(harmonia_bench::fig13::generate());
    all.extend(harmonia_bench::fig14::generate());
    all.extend(harmonia_bench::fig15::generate());
    all.extend(harmonia_bench::fig16::generate());
    all.extend(harmonia_bench::fig17::generate());
    all.extend(harmonia_bench::fig18::generate());
    all.extend(harmonia_bench::tables::generate());
    all.extend(harmonia_bench::ablation::generate());
    harmonia_bench::print_all(&all);
}
