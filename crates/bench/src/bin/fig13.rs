//! Regenerates the paper's Figure 13 artifacts.
fn main() {
    harmonia_bench::print_all(&harmonia_bench::fig13::generate());
}
