//! Regenerates the paper's Figure 11 artifacts.
fn main() {
    harmonia_bench::print_all(&harmonia_bench::fig11::generate());
}
