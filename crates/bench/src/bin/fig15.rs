//! Regenerates the paper's Figure 15 artifacts.
fn main() {
    harmonia_bench::print_all(&harmonia_bench::fig15::generate());
}
