//! Regenerates the paper's Figure 10 artifacts.
fn main() {
    harmonia_bench::print_all(&harmonia_bench::fig10::generate());
}
