//! Figure 10 — interface-wrapper micro-benchmarks.
//!
//! Native vendor interfaces vs Harmonia's wrapper: throughput must match,
//! latency may grow by a few fixed cycles.

use harmonia::hw::ip::dram::MemOp;
use harmonia::hw::ip::{DdrIp, MacIp, PcieDmaIp};
use harmonia::hw::Vendor;
use harmonia::metrics::report::fmt_f64;
use harmonia::metrics::Table;
use harmonia::platform::InterfaceWrapper;
use harmonia::sim::exec::par_sweep;
use harmonia::workloads::{AccessPattern, MemTraceGen};

/// Figure 10a: MAC loopback, native vs wrapped.
pub fn fig10a() -> Table {
    let mut t = Table::new(
        "Figure 10a — MAC (100G) native vs wrapped",
        &[
            "pkt (B)",
            "native tpt (Gbps)",
            "wrapped tpt (Gbps)",
            "native lat (us)",
            "wrapped lat (us)",
        ],
    );
    let mac = MacIp::new(Vendor::Xilinx, 100);
    let wrapper = InterfaceWrapper::wrap(&mac, 512);
    let rows = par_sweep([64u32, 128, 256, 512, 1024], |size| {
        let native_t = mac.throughput_gbps(size);
        let wrapped_t = wrapper.wrapped_throughput(native_t);
        let native_l = mac.loopback_latency_ps(size);
        let wrapped_l = native_l + 2 * wrapper.added_latency_ps();
        [
            size.to_string(),
            fmt_f64(native_t, 2),
            fmt_f64(wrapped_t, 2),
            fmt_f64(native_l as f64 / 1e6, 3),
            fmt_f64(wrapped_l as f64 / 1e6, 3),
        ]
    });
    for r in rows {
        t.row(r);
    }
    t
}

/// Figure 10b: PCIe DMA reads, native vs wrapped.
pub fn fig10b() -> Table {
    let mut t = Table::new(
        "Figure 10b — PCIe DMA (Gen4x8) native vs wrapped",
        &[
            "req (B)",
            "native tpt (GB/s)",
            "wrapped tpt (GB/s)",
            "native lat (us)",
            "wrapped lat (us)",
        ],
    );
    let dma = PcieDmaIp::new(Vendor::Xilinx, 4, 8);
    let wrapper = InterfaceWrapper::wrap(&dma, 512);
    let rows = par_sweep([1024u32, 2048, 4096, 8192, 16384], |size| {
        let native_t = dma.throughput_gbs(size);
        let native_l = dma.read_latency_ps(size);
        let wrapped_l = native_l + 2 * wrapper.added_latency_ps();
        [
            (size / 1024).to_string() + "K",
            fmt_f64(native_t, 2),
            fmt_f64(wrapper.wrapped_throughput(native_t), 2),
            fmt_f64(native_l as f64 / 1e6, 3),
            fmt_f64(wrapped_l as f64 / 1e6, 3),
        ]
    });
    for r in rows {
        t.row(r);
    }
    t
}

/// Figure 10c: DDR4 access patterns, native vs wrapped.
pub fn fig10c() -> Table {
    let mut t = Table::new(
        "Figure 10c — DDR4 native vs wrapped",
        &[
            "pattern",
            "native tpt (GB/s)",
            "wrapped tpt (GB/s)",
            "native lat (ns)",
            "wrapped lat (ns)",
        ],
    );
    let ip = DdrIp::new(Vendor::Xilinx, 4);
    let wrapper = InterfaceWrapper::wrap(&ip, 512);
    let cases = [
        ("RandRead", AccessPattern::Random, false),
        ("RandWrite", AccessPattern::Random, true),
        ("SeqRead", AccessPattern::Sequential, false),
        ("SeqWrite", AccessPattern::Sequential, true),
    ];
    let rows = par_sweep(cases, |(label, pattern, write)| {
        let ops = MemTraceGen::new(7).trace(pattern, write, 64, 30_000);
        let mut ch = ip.channel();
        let (ps, bytes) = ch.run_trace(ops.iter().copied());
        let native_bw = bytes as f64 / (ps as f64 / 1e3);
        // Single-access latency.
        let mut one = ip.channel();
        let native_lat = one.access(0, MemOp::read(0, 64));
        let wrapped_lat = native_lat + 2 * wrapper.added_latency_ps();
        [
            label.to_string(),
            fmt_f64(native_bw, 2),
            fmt_f64(wrapper.wrapped_throughput(native_bw), 2),
            fmt_f64(native_lat as f64 / 1e3, 1),
            fmt_f64(wrapped_lat as f64 / 1e3, 1),
        ]
    });
    for r in rows {
        t.row(r);
    }
    t
}

/// All Figure 10 tables.
pub fn generate() -> Vec<Table> {
    vec![fig10a(), fig10b(), fig10c()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(t: &Table, row: usize, col_from_end: usize) -> f64 {
        let text = t.to_string();
        let line = text.lines().nth(3 + row).unwrap();
        let cells: Vec<&str> = line.split_whitespace().collect();
        cells[cells.len() - 1 - col_from_end].parse().unwrap()
    }

    #[test]
    fn wrapped_throughput_identical_everywhere() {
        for t in [fig10a(), fig10b()] {
            for row in 0..t.len() {
                let native = col(&t, row, 3);
                let wrapped = col(&t, row, 2);
                assert_eq!(native, wrapped, "{} row {row}", t.title());
            }
        }
    }

    #[test]
    fn wrapper_latency_delta_is_nanoseconds() {
        let t = fig10a();
        for row in 0..t.len() {
            let native = col(&t, row, 1);
            let wrapped = col(&t, row, 0);
            let delta_us = wrapped - native;
            assert!(delta_us > 0.0);
            assert!(delta_us < 0.05, "delta {delta_us} µs too big");
        }
    }

    #[test]
    fn pcie_throughput_climbs_with_request_size() {
        let t = fig10b();
        let first = col(&t, 0, 3);
        let last = col(&t, 4, 3);
        assert!(last > first);
    }

    #[test]
    fn ddr_sequential_beats_random() {
        let t = fig10c();
        let rand_read = col(&t, 0, 3);
        let seq_read = col(&t, 2, 3);
        assert!(seq_read > 1.5 * rand_read, "seq {seq_read} vs rand {rand_read}");
    }
}
