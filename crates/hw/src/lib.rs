//! Hardware substrate for the Harmonia reproduction.
//!
//! Everything the paper's framework sits on top of — and everything a
//! software reproduction must therefore model — lives here:
//!
//! * [`vendor`] — FPGA vendors, chip families and process nodes (§3.3.1's
//!   "FPGA generation" notion);
//! * [`resource`] — on-chip resource accounting (LUT/REG/BRAM/URAM/DSP);
//! * [`device`] — the heterogeneous device catalog of Table 2 (Devices A–D)
//!   plus the supported chip families;
//! * [`iface`] — signal-level interface specifications for AXI4 and Avalon
//!   protocol variants, used to quantify vendor-specific module differences
//!   (Figure 3b);
//! * [`regfile`] — 32-bit register files and register-operation scripts,
//!   the substrate of both the legacy register interface and the
//!   command-based interface;
//! * [`ip`] — vendor IP models: MAC (25/100/400G), PCIe DMA (Gen3/4/5),
//!   DDR3/DDR4 controllers and HBM, each with a native (vendor-specific)
//!   interface, a cycle-level performance model and a vendor-specific
//!   initialization sequence.
//!
//! # Example
//!
//! ```
//! use harmonia_hw::device::catalog;
//! use harmonia_hw::Vendor;
//!
//! let a = catalog::device_a();
//! assert_eq!(a.vendor(), Vendor::Xilinx);
//! assert!(a.capacity().lut > 800_000);
//! ```

pub mod device;
pub mod iface;
pub mod ip;
pub mod regfile;
pub mod resource;
pub mod vendor;

pub use device::{DeviceId, FpgaDevice, Peripheral};
pub use iface::{InterfaceSpec, Protocol, SignalDir, SignalSpec};
pub use regfile::{Access, RegOp, RegisterFile};
pub use resource::{ResourceKind, ResourceUsage};
pub use vendor::{ChipFamily, Vendor};
