//! On-chip resource accounting.
//!
//! Every module in the workspace (vendor IPs, wrappers, RBB reusable logic,
//! roles, baseline shells) declares a [`ResourceUsage`]; shells sum their
//! modules' usage; figures 11, 16 and 18a report usage as a percentage of a
//! device's capacity.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

/// The resource types reported in the paper's figures.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ResourceKind {
    /// Look-up tables (Xilinx LUT6 / Intel ALUT).
    Lut,
    /// Flip-flops / registers.
    Reg,
    /// Block RAM (36 Kb blocks on Xilinx, M20K on Intel).
    Bram,
    /// UltraRAM (Xilinx-only large SRAM blocks; zero capacity elsewhere).
    Uram,
    /// DSP slices.
    Dsp,
}

impl ResourceKind {
    /// All kinds, in reporting order.
    pub const ALL: [ResourceKind; 5] = [
        ResourceKind::Lut,
        ResourceKind::Reg,
        ResourceKind::Bram,
        ResourceKind::Uram,
        ResourceKind::Dsp,
    ];
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ResourceKind::Lut => "LUT",
            ResourceKind::Reg => "REG",
            ResourceKind::Bram => "BRAM",
            ResourceKind::Uram => "URAM",
            ResourceKind::Dsp => "DSP",
        };
        f.write_str(s)
    }
}

/// A bundle of resource quantities.
///
/// ```
/// use harmonia_hw::ResourceUsage;
/// let a = ResourceUsage::new(1000, 2000, 4, 0, 8);
/// let b = ResourceUsage::new(500, 500, 2, 1, 0);
/// let s = a + b;
/// assert_eq!(s.lut, 1500);
/// assert_eq!(s.uram, 1);
/// ```
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct ResourceUsage {
    /// Look-up tables.
    pub lut: u64,
    /// Registers / flip-flops.
    pub reg: u64,
    /// Block-RAM blocks.
    pub bram: u64,
    /// UltraRAM blocks.
    pub uram: u64,
    /// DSP slices.
    pub dsp: u64,
}

impl ResourceUsage {
    /// Creates a usage bundle.
    pub fn new(lut: u64, reg: u64, bram: u64, uram: u64, dsp: u64) -> Self {
        ResourceUsage {
            lut,
            reg,
            bram,
            uram,
            dsp,
        }
    }

    /// The zero bundle.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Quantity of one resource kind.
    pub fn get(&self, kind: ResourceKind) -> u64 {
        match kind {
            ResourceKind::Lut => self.lut,
            ResourceKind::Reg => self.reg,
            ResourceKind::Bram => self.bram,
            ResourceKind::Uram => self.uram,
            ResourceKind::Dsp => self.dsp,
        }
    }

    /// This usage as a percentage of `capacity`, per kind. Kinds with zero
    /// capacity report 0 (e.g. URAM on Intel devices).
    pub fn percent_of(&self, capacity: &ResourceUsage, kind: ResourceKind) -> f64 {
        let cap = capacity.get(kind);
        if cap == 0 {
            return 0.0;
        }
        100.0 * self.get(kind) as f64 / cap as f64
    }

    /// Maximum utilization percentage across all kinds — the figure-16
    /// "highest resource consumption percentage" metric.
    pub fn max_percent_of(&self, capacity: &ResourceUsage) -> f64 {
        ResourceKind::ALL
            .iter()
            .map(|&k| self.percent_of(capacity, k))
            .fold(0.0, f64::max)
    }

    /// Whether this usage fits within `capacity` for every kind.
    pub fn fits_in(&self, capacity: &ResourceUsage) -> bool {
        ResourceKind::ALL
            .iter()
            .all(|&k| self.get(k) <= capacity.get(k))
    }

    /// Saturating subtraction per kind (used when computing headroom).
    pub fn saturating_sub(&self, other: &ResourceUsage) -> ResourceUsage {
        ResourceUsage {
            lut: self.lut.saturating_sub(other.lut),
            reg: self.reg.saturating_sub(other.reg),
            bram: self.bram.saturating_sub(other.bram),
            uram: self.uram.saturating_sub(other.uram),
            dsp: self.dsp.saturating_sub(other.dsp),
        }
    }

    /// Whether every field is zero.
    pub fn is_zero(&self) -> bool {
        *self == ResourceUsage::default()
    }

    /// Re-targets URAM usage onto devices without URAM: when `capacity`
    /// has no URAM blocks (Intel dice), each URAM block is implemented as
    /// 8 block-RAM primitives instead (288 Kb ≈ 8 × 36 Kb / M20K-class).
    /// On URAM-capable devices the usage is returned unchanged.
    pub fn retargeted_for(&self, capacity: &ResourceUsage) -> ResourceUsage {
        if capacity.uram > 0 || self.uram == 0 {
            return *self;
        }
        ResourceUsage {
            bram: self.bram + self.uram * 8,
            uram: 0,
            ..*self
        }
    }
}

impl Add for ResourceUsage {
    type Output = ResourceUsage;
    fn add(self, rhs: ResourceUsage) -> ResourceUsage {
        ResourceUsage {
            lut: self.lut + rhs.lut,
            reg: self.reg + rhs.reg,
            bram: self.bram + rhs.bram,
            uram: self.uram + rhs.uram,
            dsp: self.dsp + rhs.dsp,
        }
    }
}

impl AddAssign for ResourceUsage {
    fn add_assign(&mut self, rhs: ResourceUsage) {
        *self = *self + rhs;
    }
}

impl Sub for ResourceUsage {
    type Output = ResourceUsage;
    /// # Panics
    ///
    /// Panics in debug builds on underflow; use
    /// [`saturating_sub`](ResourceUsage::saturating_sub) for headroom math.
    fn sub(self, rhs: ResourceUsage) -> ResourceUsage {
        ResourceUsage {
            lut: self.lut - rhs.lut,
            reg: self.reg - rhs.reg,
            bram: self.bram - rhs.bram,
            uram: self.uram - rhs.uram,
            dsp: self.dsp - rhs.dsp,
        }
    }
}

impl Mul<u64> for ResourceUsage {
    type Output = ResourceUsage;
    fn mul(self, k: u64) -> ResourceUsage {
        ResourceUsage {
            lut: self.lut * k,
            reg: self.reg * k,
            bram: self.bram * k,
            uram: self.uram * k,
            dsp: self.dsp * k,
        }
    }
}

impl Sum for ResourceUsage {
    fn sum<I: Iterator<Item = ResourceUsage>>(iter: I) -> ResourceUsage {
        iter.fold(ResourceUsage::zero(), |a, b| a + b)
    }
}

impl fmt::Display for ResourceUsage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LUT {} / REG {} / BRAM {} / URAM {} / DSP {}",
            self.lut, self.reg, self.bram, self.uram, self.dsp
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = ResourceUsage::new(10, 20, 3, 1, 2);
        let b = ResourceUsage::new(5, 10, 1, 0, 2);
        assert_eq!(a + b, ResourceUsage::new(15, 30, 4, 1, 4));
        assert_eq!(a - b, ResourceUsage::new(5, 10, 2, 1, 0));
        assert_eq!(b * 3, ResourceUsage::new(15, 30, 3, 0, 6));
    }

    #[test]
    fn sum_over_iterator() {
        let parts = [
            ResourceUsage::new(1, 1, 0, 0, 0),
            ResourceUsage::new(2, 2, 1, 0, 0),
            ResourceUsage::new(3, 3, 0, 1, 5),
        ];
        let total: ResourceUsage = parts.into_iter().sum();
        assert_eq!(total, ResourceUsage::new(6, 6, 1, 1, 5));
    }

    #[test]
    fn percentages() {
        let cap = ResourceUsage::new(1000, 2000, 100, 0, 10);
        let use_ = ResourceUsage::new(100, 100, 25, 5, 1);
        assert!((use_.percent_of(&cap, ResourceKind::Lut) - 10.0).abs() < 1e-9);
        assert!((use_.percent_of(&cap, ResourceKind::Bram) - 25.0).abs() < 1e-9);
        // Zero capacity (URAM on Intel) reports 0, not a division error.
        assert_eq!(use_.percent_of(&cap, ResourceKind::Uram), 0.0);
        assert!((use_.max_percent_of(&cap) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn fits_in_checks_every_kind() {
        let cap = ResourceUsage::new(100, 100, 10, 0, 10);
        assert!(ResourceUsage::new(100, 100, 10, 0, 10).fits_in(&cap));
        assert!(!ResourceUsage::new(1, 1, 1, 1, 1).fits_in(&cap)); // uram
    }

    #[test]
    fn saturating_sub_never_underflows() {
        let a = ResourceUsage::new(1, 1, 1, 1, 1);
        let b = ResourceUsage::new(5, 0, 5, 0, 5);
        assert_eq!(a.saturating_sub(&b), ResourceUsage::new(0, 1, 0, 1, 0));
    }

    #[test]
    fn uram_retargeting() {
        let use_ = ResourceUsage::new(10, 10, 4, 3, 0);
        let xilinx_cap = ResourceUsage::new(100, 100, 100, 100, 10);
        let intel_cap = ResourceUsage::new(100, 100, 100, 0, 10);
        assert_eq!(use_.retargeted_for(&xilinx_cap), use_);
        let spilled = use_.retargeted_for(&intel_cap);
        assert_eq!(spilled.uram, 0);
        assert_eq!(spilled.bram, 4 + 24);
        assert!(spilled.fits_in(&intel_cap));
    }

    #[test]
    fn display_mentions_every_kind() {
        let s = ResourceUsage::new(1, 2, 3, 4, 5).to_string();
        for k in ResourceKind::ALL {
            assert!(s.contains(&k.to_string()), "{s} missing {k}");
        }
    }
}
