//! Register files and register-operation scripts.
//!
//! Control in the shell–role architecture bottoms out in 32-bit register
//! reads/writes (§3.3.3). Each module instance owns a [`RegisterFile`];
//! software control paths are sequences of [`RegOp`]s. The paper's Figure 3d
//! shows why these sequences are the portability hazard: one shell requires
//! polling a status register before initialization writes, another performs
//! the handshake in hardware — so [`script_diff`] measures how many
//! operations change between platforms (the Figure 13 metric).

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Register access permissions.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Access {
    /// Read-only (status, counters).
    ReadOnly,
    /// Read-write (configuration).
    ReadWrite,
    /// Write-only / self-clearing (triggers).
    WriteOnly,
}

/// A named 32-bit register.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Register {
    name: String,
    access: Access,
    value: u32,
    reset_value: u32,
}

/// Errors from register-file operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegError {
    /// The address is not mapped.
    Unmapped {
        /// Offending address.
        addr: u32,
    },
    /// Write attempted on a read-only register.
    ReadOnlyWrite {
        /// Offending address.
        addr: u32,
    },
    /// Read attempted on a write-only register.
    WriteOnlyRead {
        /// Offending address.
        addr: u32,
    },
    /// A `WaitStatus` polled out without the expected value appearing.
    WaitTimeout {
        /// Polled address.
        addr: u32,
        /// Mask applied.
        mask: u32,
        /// Expected masked value.
        expect: u32,
    },
}

impl fmt::Display for RegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegError::Unmapped { addr } => write!(f, "unmapped register address {addr:#06x}"),
            RegError::ReadOnlyWrite { addr } => {
                write!(f, "write to read-only register {addr:#06x}")
            }
            RegError::WriteOnlyRead { addr } => {
                write!(f, "read from write-only register {addr:#06x}")
            }
            RegError::WaitTimeout { addr, mask, expect } => write!(
                f,
                "timeout waiting for ({addr:#06x} & {mask:#010x}) == {expect:#010x}"
            ),
        }
    }
}

impl Error for RegError {}

/// A module's 32-bit register space.
///
/// ```
/// use harmonia_hw::{RegisterFile, Access};
/// let mut rf = RegisterFile::new("mac");
/// rf.define(0x00, "ctrl", Access::ReadWrite, 0);
/// rf.write(0x00, 0x1)?;
/// assert_eq!(rf.read(0x00)?, 0x1);
/// # Ok::<(), harmonia_hw::regfile::RegError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct RegisterFile {
    module: String,
    regs: BTreeMap<u32, Register>,
    reads: u64,
    writes: u64,
}

impl RegisterFile {
    /// Creates an empty register file for the named module.
    pub fn new(module: impl Into<String>) -> Self {
        RegisterFile {
            module: module.into(),
            ..Default::default()
        }
    }

    /// Owning module name.
    pub fn module(&self) -> &str {
        &self.module
    }

    /// Defines a register at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the address is already defined — overlapping register maps
    /// are always a module-description bug.
    pub fn define(&mut self, addr: u32, name: impl Into<String>, access: Access, reset: u32) {
        let reg = Register {
            name: name.into(),
            access,
            value: reset,
            reset_value: reset,
        };
        let prev = self.regs.insert(addr, reg);
        assert!(
            prev.is_none(),
            "register address {addr:#06x} defined twice in {}",
            self.module
        );
    }

    /// Defines a contiguous block of registers `name0..nameN-1` starting at
    /// `base`, 4 bytes apart. Returns the address one past the block.
    pub fn define_block(
        &mut self,
        base: u32,
        prefix: &str,
        count: u32,
        access: Access,
        reset: u32,
    ) -> u32 {
        for i in 0..count {
            self.define(base + 4 * i, format!("{prefix}{i}"), access, reset);
        }
        base + 4 * count
    }

    /// Number of defined registers.
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// Whether the file defines no registers.
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    /// Names and addresses of all registers, in address order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> + '_ {
        self.regs.iter().map(|(a, r)| (*a, r.name.as_str()))
    }

    /// Looks up a register's address by name.
    pub fn addr_of(&self, name: &str) -> Option<u32> {
        self.regs
            .iter()
            .find(|(_, r)| r.name == name)
            .map(|(a, _)| *a)
    }

    /// Reads a register.
    ///
    /// # Errors
    ///
    /// [`RegError::Unmapped`] or [`RegError::WriteOnlyRead`].
    pub fn read(&mut self, addr: u32) -> Result<u32, RegError> {
        let reg = self.regs.get(&addr).ok_or(RegError::Unmapped { addr })?;
        if reg.access == Access::WriteOnly {
            return Err(RegError::WriteOnlyRead { addr });
        }
        self.reads += 1;
        Ok(reg.value)
    }

    /// Writes a register.
    ///
    /// # Errors
    ///
    /// [`RegError::Unmapped`] or [`RegError::ReadOnlyWrite`].
    pub fn write(&mut self, addr: u32, value: u32) -> Result<(), RegError> {
        let reg = self
            .regs
            .get_mut(&addr)
            .ok_or(RegError::Unmapped { addr })?;
        if reg.access == Access::ReadOnly {
            return Err(RegError::ReadOnlyWrite { addr });
        }
        reg.value = value;
        self.writes += 1;
        Ok(())
    }

    /// Hardware-side update: sets a register's value regardless of access
    /// permissions (modules update their own status registers).
    pub fn hw_set(&mut self, addr: u32, value: u32) -> Result<(), RegError> {
        let reg = self
            .regs
            .get_mut(&addr)
            .ok_or(RegError::Unmapped { addr })?;
        reg.value = value;
        Ok(())
    }

    /// Resets all registers to their reset values.
    pub fn reset(&mut self) {
        for reg in self.regs.values_mut() {
            reg.value = reg.reset_value;
        }
    }

    /// Total software reads performed.
    pub fn total_reads(&self) -> u64 {
        self.reads
    }

    /// Total software writes performed.
    pub fn total_writes(&self) -> u64 {
        self.writes
    }

    /// Executes one [`RegOp`] against this file.
    ///
    /// `WaitStatus` succeeds immediately if the masked value matches and
    /// otherwise returns [`RegError::WaitTimeout`] — the simulation's
    /// modules set status registers before software polls them.
    ///
    /// # Errors
    ///
    /// Propagates the underlying read/write errors.
    pub fn apply(&mut self, op: &RegOp) -> Result<Option<u32>, RegError> {
        match *op {
            RegOp::Read { addr } => self.read(addr).map(Some),
            RegOp::Write { addr, value } => self.write(addr, value).map(|()| None),
            RegOp::WaitStatus { addr, mask, expect } => {
                let v = self.read(addr)?;
                if v & mask == expect {
                    Ok(Some(v))
                } else {
                    Err(RegError::WaitTimeout { addr, mask, expect })
                }
            }
        }
    }
}

/// One register-level control operation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum RegOp {
    /// Read the register at `addr`.
    Read {
        /// Register address.
        addr: u32,
    },
    /// Write `value` to `addr`.
    Write {
        /// Register address.
        addr: u32,
        /// Value to write.
        value: u32,
    },
    /// Poll `addr` until `(value & mask) == expect` (Figure 3d's
    /// "Wait(Reg_read(Stat))" pattern).
    WaitStatus {
        /// Register address.
        addr: u32,
        /// Bit mask.
        mask: u32,
        /// Expected masked value.
        expect: u32,
    },
}

impl fmt::Display for RegOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            RegOp::Read { addr } => write!(f, "reg_read({addr:#06x})"),
            RegOp::Write { addr, value } => write!(f, "reg_write({addr:#06x}, {value:#x})"),
            RegOp::WaitStatus { addr, mask, expect } => {
                write!(f, "wait({addr:#06x} & {mask:#x} == {expect:#x})")
            }
        }
    }
}

/// Counts how many operations must change to turn script `a` into script
/// `b`: insertions plus deletions under a longest-common-subsequence
/// alignment. This is the "number of software modifications" metric of
/// Figure 13 — each differing line of a register script is one ad-hoc edit
/// the software developer must make when migrating platforms.
pub fn script_diff(a: &[RegOp], b: &[RegOp]) -> usize {
    let n = a.len();
    let m = b.len();
    // LCS dynamic program, O(n·m); scripts are at most a few hundred ops.
    let mut dp = vec![vec![0usize; m + 1]; n + 1];
    for i in 1..=n {
        for j in 1..=m {
            dp[i][j] = if a[i - 1] == b[j - 1] {
                dp[i - 1][j - 1] + 1
            } else {
                dp[i - 1][j].max(dp[i][j - 1])
            };
        }
    }
    let lcs = dp[n][m];
    (n - lcs) + (m - lcs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_file() -> RegisterFile {
        let mut rf = RegisterFile::new("test");
        rf.define(0x00, "ctrl", Access::ReadWrite, 0);
        rf.define(0x04, "status", Access::ReadOnly, 0);
        rf.define(0x08, "trigger", Access::WriteOnly, 0);
        rf
    }

    #[test]
    fn read_write_basics() {
        let mut rf = sample_file();
        rf.write(0x00, 7).unwrap();
        assert_eq!(rf.read(0x00).unwrap(), 7);
        assert_eq!(rf.total_reads(), 1);
        assert_eq!(rf.total_writes(), 1);
    }

    #[test]
    fn access_control_enforced() {
        let mut rf = sample_file();
        assert_eq!(
            rf.write(0x04, 1),
            Err(RegError::ReadOnlyWrite { addr: 0x04 })
        );
        assert_eq!(rf.read(0x08), Err(RegError::WriteOnlyRead { addr: 0x08 }));
        assert_eq!(rf.read(0x40), Err(RegError::Unmapped { addr: 0x40 }));
    }

    #[test]
    fn hw_set_bypasses_access() {
        let mut rf = sample_file();
        rf.hw_set(0x04, 0xAB).unwrap();
        assert_eq!(rf.read(0x04).unwrap(), 0xAB);
    }

    #[test]
    #[should_panic(expected = "defined twice")]
    fn duplicate_definition_panics() {
        let mut rf = sample_file();
        rf.define(0x00, "dup", Access::ReadWrite, 0);
    }

    #[test]
    fn define_block_and_lookup() {
        let mut rf = RegisterFile::new("m");
        let next = rf.define_block(0x100, "stat_", 4, Access::ReadOnly, 0);
        assert_eq!(next, 0x110);
        assert_eq!(rf.len(), 4);
        assert_eq!(rf.addr_of("stat_2"), Some(0x108));
    }

    #[test]
    fn reset_restores_values() {
        let mut rf = sample_file();
        rf.write(0x00, 99).unwrap();
        rf.reset();
        assert_eq!(rf.read(0x00).unwrap(), 0);
    }

    #[test]
    fn apply_wait_status() {
        let mut rf = sample_file();
        rf.hw_set(0x04, 0b10).unwrap();
        let ok = rf.apply(&RegOp::WaitStatus {
            addr: 0x04,
            mask: 0b10,
            expect: 0b10,
        });
        assert_eq!(ok.unwrap(), Some(0b10));
        let err = rf.apply(&RegOp::WaitStatus {
            addr: 0x04,
            mask: 0b01,
            expect: 0b01,
        });
        assert!(matches!(err, Err(RegError::WaitTimeout { .. })));
    }

    #[test]
    fn script_diff_identical_is_zero() {
        let s = vec![
            RegOp::Write { addr: 0, value: 1 },
            RegOp::Read { addr: 4 },
        ];
        assert_eq!(script_diff(&s, &s), 0);
    }

    #[test]
    fn script_diff_counts_insert_delete_replace() {
        let a = vec![
            RegOp::Write { addr: 0, value: 1 },
            RegOp::Write { addr: 4, value: 2 },
            RegOp::Read { addr: 8 },
        ];
        let b = vec![
            RegOp::Write { addr: 0, value: 1 },
            RegOp::WaitStatus {
                addr: 4,
                mask: 1,
                expect: 1,
            },
            RegOp::Write { addr: 4, value: 2 },
        ];
        // LCS = [write0, write4] → (3-2)+(3-2) = 2
        assert_eq!(script_diff(&a, &b), 2);
        // Diff is symmetric.
        assert_eq!(script_diff(&b, &a), 2);
    }

    #[test]
    fn script_diff_disjoint_is_sum_of_lengths() {
        let a = vec![RegOp::Read { addr: 0 }; 3];
        let b = vec![RegOp::Read { addr: 4 }; 5];
        assert_eq!(script_diff(&a, &b), 8);
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            RegOp::Write {
                addr: 0x10,
                value: 0x1
            }
            .to_string(),
            "reg_write(0x0010, 0x1)"
        );
        assert!(RegOp::Read { addr: 0 }.to_string().contains("reg_read"));
    }
}
