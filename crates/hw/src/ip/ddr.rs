//! DDR3/DDR4 memory-controller IP models.
//!
//! Wraps the shared [`DramModel`] timing engine
//! with the vendor-specific controller shells: Xilinx MIG-style (AXI4-MM
//! user interface, a large generated configuration space) and Intel
//! EMIF-style (Avalon-MM, calibration-centric configuration).

use crate::iface::{self, InterfaceSpec, SignalDir};
use crate::ip::dram::{DramModel, DramTiming};
use crate::ip::{IpKind, VendorIp};
use crate::regfile::{Access, RegOp, RegisterFile};
use crate::resource::ResourceUsage;
use crate::vendor::Vendor;
use harmonia_sim::Freq;

/// A DDR controller instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DdrIp {
    vendor: Vendor,
    gen: u8,
}

impl DdrIp {
    /// Creates a DDR3 (`gen = 3`) or DDR4 (`gen = 4`) controller model.
    ///
    /// # Panics
    ///
    /// Panics if `gen` is not 3 or 4.
    pub fn new(vendor: Vendor, gen: u8) -> Self {
        assert!(gen == 3 || gen == 4, "unsupported DDR generation {gen}");
        DdrIp { vendor, gen }
    }

    /// DDR generation (3 or 4).
    pub fn gen(&self) -> u8 {
        self.gen
    }

    /// The channel timing for this controller.
    pub fn timing(&self) -> DramTiming {
        if self.gen == 4 {
            DramTiming::ddr4_2400()
        } else {
            DramTiming::ddr3_1600()
        }
    }

    /// Creates a fresh channel timing model.
    pub fn channel(&self) -> DramModel {
        DramModel::new(self.timing())
    }

    /// [`DdrIp::channel`] with an observability collector attached: row
    /// conflicts and ECC scrubs on the returned channel land on the
    /// shared timeline.
    pub fn traced_channel(&self, trace: &harmonia_sim::TraceCollector) -> DramModel {
        let mut ch = self.channel();
        ch.set_trace_collector(trace.clone());
        ch
    }

    /// Peak channel bandwidth in GB/s.
    pub fn peak_gbs(&self) -> f64 {
        self.timing().peak_gbs()
    }

    /// Latency cost of a corrected ECC hit on this controller (see
    /// `DramTiming::ecc_scrub_penalty_ps`; fault-aware accesses go
    /// through `DramModel::access_with_faults` on [`DdrIp::channel`]).
    pub fn ecc_scrub_penalty_ps(&self) -> harmonia_sim::Picos {
        self.timing().ecc_scrub_penalty_ps()
    }
}

impl VendorIp for DdrIp {
    fn kind(&self) -> IpKind {
        IpKind::Ddr
    }

    fn vendor(&self) -> Vendor {
        self.vendor
    }

    fn instance_name(&self) -> String {
        format!(
            "{}-ddr{}",
            self.vendor.to_string().to_lowercase().replace('-', ""),
            self.gen
        )
    }

    fn native_interface(&self) -> InterfaceSpec {
        match self.vendor {
            Vendor::Xilinx | Vendor::InHouse => iface::axi4_mm("ddr_axi", 512, 34)
                .signal("init_calib_complete", 1, SignalDir::Out)
                .signal("app_ref_req", 1, SignalDir::In)
                .signal("app_ref_ack", 1, SignalDir::Out)
                .signal("dbg_bus", 512, SignalDir::Out)
                .config("MEMORY_PART", format!("MT40A1G8-DDR{}", self.gen))
                .config("DATA_WIDTH", "64")
                .config("ECC", "ON")
                .config("CAS_LATENCY", "17")
                .config("MEMORY_FREQUENCY", "1200")
                .config("ADDR_MIRRORING", "OFF")
                .config("ORDERING", "NORM")
                .config("AUTO_PRECHARGE", "OFF")
                .config("PHY_RATIO", "4:1")
                .config("CLKOUT_PHASE", "337.5")
                .config("DQ_SLEW", "FAST")
                .config("OUTPUT_IMPEDANCE", "RZQ/7")
                .config("SELF_REFRESH", "ENABLE"),
            Vendor::Intel => iface::avalon_mm("ddr_avmm", 512, 31)
                .signal("amm_ready", 1, SignalDir::In)
                .signal("cal_success", 1, SignalDir::Out)
                .signal("cal_fail", 1, SignalDir::Out)
                .signal("pll_locked", 1, SignalDir::Out)
                .config("MEM_FORMAT", format!("DDR{}", self.gen))
                .config("SPEED_GRADE", "2400")
                .config("PHY_PING_PONG", "false")
                .config("CAL_MODE", "full")
                .config("MEM_CLK_FREQ_MHZ", "1200")
                .config("CTRL_AUTO_PRECHARGE_EN", "0")
                .config("REFRESH_BURST", "4")
                .config("EFFICIENCY_MONITOR", "disabled")
                .config("BOARD_SKEW_PS", "50")
                .config("IO_VOLTAGE", "1.2"),
        }
    }

    fn register_map(&self) -> RegisterFile {
        let mut rf = RegisterFile::new(self.instance_name());
        rf.define(0x000, "cal_status", Access::ReadOnly, 0);
        rf.define(0x004, "cal_ctrl", Access::ReadWrite, 0);
        rf.define(0x008, "refresh_ctrl", Access::ReadWrite, 0x40);
        rf.define(0x00C, "ecc_ctrl", Access::ReadWrite, 0x1);
        rf.define(0x010, "ecc_err_count", Access::ReadOnly, 0);
        rf.define(0x014, "temp_status", Access::ReadOnly, 0);
        rf.define(0x018, "interleave_ctrl", Access::ReadWrite, 0);
        rf.define(0x01C, "perf_rd_count", Access::ReadOnly, 0);
        rf.define(0x020, "perf_wr_count", Access::ReadOnly, 0);
        rf.define(0x024, "perf_stall_count", Access::ReadOnly, 0);
        rf.define_block(0x100, "mr_shadow_", 8, Access::ReadWrite, 0);
        rf
    }

    fn init_sequence(&self) -> Vec<RegOp> {
        match self.vendor {
            // MIG-style: trigger calibration, poll, program mode-register
            // shadows one by one.
            Vendor::Xilinx | Vendor::InHouse => {
                let mut ops = vec![
                    RegOp::Write {
                        addr: 0x004,
                        value: 0x1,
                    },
                    RegOp::WaitStatus {
                        addr: 0x000,
                        mask: 0x1,
                        expect: 0x1,
                    },
                ];
                for i in 0..8u32 {
                    ops.push(RegOp::Write {
                        addr: 0x100 + 4 * i,
                        value: 0x0800 + i,
                    });
                }
                ops.push(RegOp::Write {
                    addr: 0x008,
                    value: 0x40,
                });
                ops.push(RegOp::Write {
                    addr: 0x00C,
                    value: 0x1,
                });
                ops.push(RegOp::Read { addr: 0x010 });
                ops
            }
            // EMIF-style: calibration autostarts; configure then verify.
            Vendor::Intel => vec![
                RegOp::Write {
                    addr: 0x008,
                    value: 0x80,
                },
                RegOp::Write {
                    addr: 0x00C,
                    value: 0x3,
                },
                RegOp::Write {
                    addr: 0x018,
                    value: 0x1,
                },
                RegOp::WaitStatus {
                    addr: 0x000,
                    mask: 0x3,
                    expect: 0x1,
                },
                RegOp::Read { addr: 0x014 },
            ],
        }
    }

    fn resources(&self) -> ResourceUsage {
        match self.vendor {
            Vendor::Xilinx | Vendor::InHouse => ResourceUsage::new(16_000, 21_000, 26, 0, 3),
            Vendor::Intel => ResourceUsage::new(13_000, 18_000, 45, 0, 0),
        }
    }

    fn data_width_bits(&self) -> u32 {
        512
    }

    fn core_clock(&self) -> Freq {
        Freq::mhz(300)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ip::dram::MemOp;

    #[test]
    fn ddr4_peak_is_19_2() {
        assert!((DdrIp::new(Vendor::Xilinx, 4).peak_gbs() - 19.2).abs() < 0.1);
        assert!((DdrIp::new(Vendor::Intel, 3).peak_gbs() - 12.8).abs() < 0.1);
    }

    #[test]
    fn channel_model_runs() {
        let ip = DdrIp::new(Vendor::Intel, 4);
        let mut ch = ip.channel();
        let (ps, bytes) = ch.run_trace((0..1000u64).map(|i| MemOp::read(i * 64, 64)));
        assert!(ps > 0 && bytes == 64_000);
    }

    #[test]
    fn traced_channel_reports_row_conflicts() {
        use harmonia_sim::TraceCollector;
        let ip = DdrIp::new(Vendor::Xilinx, 4);
        let tc = TraceCollector::enabled();
        let mut ch = ip.traced_channel(&tc);
        // Row-thrash within one bank: every access opens a new row.
        let (ps, _) = ch.run_trace((0..8u64).map(|i| MemOp::read(i << 20, 64)));
        assert!(ps > 0);
        let trace = tc.take();
        assert!(
            trace
                .events()
                .iter()
                .all(|e| e.kind.name() == "dram-row-conflict"),
            "unexpected events: {trace}"
        );
        assert_eq!(trace.len(), 8);
    }

    #[test]
    #[should_panic(expected = "unsupported DDR generation")]
    fn ddr5_not_modelled() {
        let _ = DdrIp::new(Vendor::Xilinx, 5);
    }

    #[test]
    fn vendor_configs_disjoint() {
        let x = DdrIp::new(Vendor::Xilinx, 4).native_interface();
        let i = DdrIp::new(Vendor::Intel, 4).native_interface();
        let d = x.diff(&i);
        assert!(d.configuration >= 20, "got {}", d.configuration);
    }

    #[test]
    fn init_sequences_both_calibrate() {
        for v in [Vendor::Xilinx, Vendor::Intel] {
            let ops = DdrIp::new(v, 4).init_sequence();
            assert!(ops
                .iter()
                .any(|op| matches!(op, RegOp::WaitStatus { .. })));
        }
    }
}
