//! Bank-aware DRAM timing model shared by the DDR and HBM controllers.
//!
//! The Memory RBB's ex-functions (address interleaving across bank groups,
//! hot cache) only pay off if the substrate actually models row-buffer
//! locality, bank-group timing and activation limits — so this model tracks
//! an open row per bank, pipelines column commands against the data bus
//! (CAS latency does not consume bus time), charges the same-bank-group
//! burst gap (tCCD_L vs tCCD_S) and enforces the four-activate window
//! (tFAW). That is enough to reproduce the paper's qualitative memory
//! results: sequential ≫ random throughput (Figs 10c, 18c) and the benefit
//! of interleaving (ablation benches).

use harmonia_sim::event::WakeSource;
use harmonia_sim::{FaultInjector, Picos, TraceCollector, TraceEventKind};
use std::collections::VecDeque;

/// One memory operation presented to the controller.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct MemOp {
    /// Byte address.
    pub addr: u64,
    /// Transfer size in bytes.
    pub bytes: u32,
    /// Whether this is a write (vs read).
    pub is_write: bool,
}

impl MemOp {
    /// A read of `bytes` at `addr`.
    pub fn read(addr: u64, bytes: u32) -> Self {
        MemOp {
            addr,
            bytes,
            is_write: false,
        }
    }

    /// A write of `bytes` at `addr`.
    pub fn write(addr: u64, bytes: u32) -> Self {
        MemOp {
            addr,
            bytes,
            is_write: true,
        }
    }
}

/// Timing parameters of a DRAM channel.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DramTiming {
    /// CAS latency (column command → first data), ps. Pure latency; does
    /// not occupy the data bus.
    pub cas_ps: Picos,
    /// Precharge + activate penalty on a row miss, ps.
    pub row_miss_extra_ps: Picos,
    /// Data-bus time for one burst, ps.
    pub burst_ps: Picos,
    /// Burst length in bytes.
    pub burst_bytes: u32,
    /// Number of banks in the channel.
    pub banks: u32,
    /// Number of bank groups (back-to-back bursts to the *same* group pay
    /// [`same_group_gap_ps`](Self::same_group_gap_ps)).
    pub bank_groups: u32,
    /// Extra bus gap for consecutive bursts to the same bank group, ps.
    pub same_group_gap_ps: Picos,
    /// Read↔write bus turnaround penalty, ps.
    pub turnaround_ps: Picos,
    /// Row (page) size in bytes.
    pub row_bytes: u32,
    /// Four-activate window (tFAW): at most 4 row activations may start in
    /// any window of this many ps.
    pub faw_ps: Picos,
}

impl DramTiming {
    /// DDR4-2400 on a 64-bit channel: 19.2 GB/s peak, 64 B per burst.
    pub fn ddr4_2400() -> Self {
        DramTiming {
            cas_ps: 13_500,
            row_miss_extra_ps: 27_000,
            burst_ps: 3_333, // 64 B / 19.2 GB/s
            burst_bytes: 64,
            banks: 16,
            bank_groups: 4,
            same_group_gap_ps: 1_666,
            turnaround_ps: 7_500,
            row_bytes: 8192,
            faw_ps: 30_000,
        }
    }

    /// DDR3-1600 on a 64-bit channel: 12.8 GB/s peak, no bank groups.
    pub fn ddr3_1600() -> Self {
        DramTiming {
            cas_ps: 13_750,
            row_miss_extra_ps: 27_500,
            burst_ps: 5_000, // 64 B / 12.8 GB/s
            burst_bytes: 64,
            banks: 8,
            bank_groups: 1,
            same_group_gap_ps: 0,
            turnaround_ps: 7_500,
            row_bytes: 8192,
            faw_ps: 40_000,
        }
    }

    /// One HBM2 pseudo-channel: ≈14.4 GB/s, 32 B bursts. An 8 GiB stack
    /// exposes 32 such channels (460 GB/s aggregate).
    pub fn hbm2_channel() -> Self {
        DramTiming {
            cas_ps: 14_000,
            row_miss_extra_ps: 28_000,
            burst_ps: 2_222, // 32 B / 14.4 GB/s
            burst_bytes: 32,
            banks: 16,
            bank_groups: 4,
            same_group_gap_ps: 1_111,
            turnaround_ps: 6_000,
            row_bytes: 2048,
            faw_ps: 30_000,
        }
    }

    /// Theoretical peak bandwidth in GB/s.
    pub fn peak_gbs(&self) -> f64 {
        self.burst_bytes as f64 / (self.burst_ps as f64 / 1e3) // B/ns == GB/s
    }

    /// Latency cost of one corrected ECC hit: scrub the word and replay
    /// the column access (CAS + re-activated row + one burst).
    pub fn ecc_scrub_penalty_ps(&self) -> Picos {
        self.cas_ps + self.row_miss_extra_ps + self.burst_ps
    }
}

/// A single in-order DRAM channel with per-bank open-row state.
///
/// The default physical address mapping interleaves banks on burst
/// granularity (bank-group bits in the low address bits), the mapping
/// production controllers use so that sequential streams alternate bank
/// groups and reach full bandwidth.
#[derive(Clone, Debug)]
pub struct DramModel {
    timing: DramTiming,
    open_rows: Vec<Option<u64>>,
    /// Next time each bank can accept a command.
    bank_cmd_free_ps: Vec<Picos>,
    /// Next time the data bus is free.
    bus_free_ps: Picos,
    last_group: Option<u32>,
    last_was_write: Option<bool>,
    /// Start times of recent row activations, for the tFAW window.
    recent_activates: VecDeque<Picos>,
    hits: u64,
    misses: u64,
    trace: TraceCollector,
}

impl DramModel {
    /// Creates a channel with the given timing.
    pub fn new(timing: DramTiming) -> Self {
        DramModel {
            open_rows: vec![None; timing.banks as usize],
            bank_cmd_free_ps: vec![0; timing.banks as usize],
            bus_free_ps: 0,
            last_group: None,
            last_was_write: None,
            recent_activates: VecDeque::with_capacity(4),
            timing,
            hits: 0,
            misses: 0,
            trace: TraceCollector::disabled(),
        }
    }

    /// Attaches an observability collector: row-buffer conflicts emit
    /// [`TraceEventKind::DramRowConflict`] instants and corrected ECC
    /// hits emit [`TraceEventKind::EccScrub`] spans.
    pub fn set_trace_collector(&mut self, trace: TraceCollector) {
        self.trace = trace;
    }

    /// The channel's timing parameters.
    pub fn timing(&self) -> &DramTiming {
        &self.timing
    }

    fn bank_of(&self, addr: u64) -> u32 {
        ((addr / u64::from(self.timing.burst_bytes)) % u64::from(self.timing.banks)) as u32
    }

    fn row_of(&self, addr: u64) -> u64 {
        addr / (u64::from(self.timing.row_bytes) * u64::from(self.timing.banks))
    }

    fn group_of(&self, bank: u32) -> u32 {
        bank % self.timing.bank_groups
    }

    /// Reserves a slot in the four-activate window at or after `t`; returns
    /// the actual activation time.
    fn reserve_activate(&mut self, mut t: Picos) -> Picos {
        while let Some(&oldest) = self.recent_activates.front() {
            if self.recent_activates.len() < 4 {
                break;
            }
            if t >= oldest + self.timing.faw_ps {
                self.recent_activates.pop_front();
            } else {
                t = oldest + self.timing.faw_ps;
                self.recent_activates.pop_front();
            }
        }
        self.recent_activates.push_back(t);
        t
    }

    /// Issues one operation whose command may start at `issue_ps`; returns
    /// the completion time (last data beat plus CAS latency).
    ///
    /// Pass the enqueue time for latency studies, or a constant 0 to model
    /// a saturated in-order request queue for throughput studies.
    pub fn access(&mut self, issue_ps: Picos, op: MemOp) -> Picos {
        let bank = self.bank_of(op.addr) as usize;
        let row = self.row_of(op.addr);
        let group = self.group_of(bank as u32);

        let mut t = issue_ps.max(self.bank_cmd_free_ps[bank]);
        if self.open_rows[bank] == Some(row) {
            self.hits += 1;
        } else {
            self.misses += 1;
            self.open_rows[bank] = Some(row);
            self.trace
                .instant(t, TraceEventKind::DramRowConflict { bank: bank as u32 });
            t = self.reserve_activate(t) + self.timing.row_miss_extra_ps;
        }

        let group_gap = if self.last_group == Some(group) {
            self.timing.same_group_gap_ps
        } else {
            0
        };
        let turnaround = match self.last_was_write {
            Some(w) if w != op.is_write => self.timing.turnaround_ps,
            _ => 0,
        };

        let bursts = u64::from(op.bytes.div_ceil(self.timing.burst_bytes));
        // Data appears CAS after the column command, but the bus is only
        // occupied for the burst itself — commands pipeline underneath.
        let data_start = (t + self.timing.cas_ps).max(self.bus_free_ps + group_gap + turnaround);
        let done = data_start + bursts * self.timing.burst_ps;

        self.bus_free_ps = done;
        // The bank can take its next column command once this burst is on
        // the wire (tCCD spacing is enforced by the bus occupancy).
        self.bank_cmd_free_ps[bank] = data_start - self.timing.cas_ps + self.timing.burst_ps;
        self.last_group = Some(group);
        self.last_was_write = Some(op.is_write);
        done
    }

    /// [`DramModel::access`] through the fault plane: if the injector
    /// fires an ECC hit for this access, completion is delayed by the
    /// scrub-and-replay penalty (the data is corrected, not lost). With
    /// the no-op injector this is exactly `access`.
    pub fn access_with_faults(
        &mut self,
        issue_ps: Picos,
        op: MemOp,
        faults: &FaultInjector,
    ) -> Picos {
        let done = self.access(issue_ps, op);
        if faults.ecc_error(done) {
            let scrubbed = done + self.timing.ecc_scrub_penalty_ps();
            self.bus_free_ps = self.bus_free_ps.max(scrubbed);
            self.trace
                .span(done, scrubbed - done, TraceEventKind::EccScrub);
            scrubbed
        } else {
            done
        }
    }

    /// Runs a whole trace as a saturated in-order queue; returns
    /// `(makespan_ps, bytes)`.
    pub fn run_trace<I: IntoIterator<Item = MemOp>>(&mut self, ops: I) -> (Picos, u64) {
        let mut last_done = 0;
        let mut bytes = 0u64;
        for op in ops {
            last_done = self.access(0, op);
            bytes += u64::from(op.bytes);
        }
        (last_done, bytes)
    }

    /// Achieved bandwidth of a trace in GB/s.
    pub fn trace_bandwidth_gbs<I: IntoIterator<Item = MemOp>>(&mut self, ops: I) -> f64 {
        let (ps, bytes) = self.run_trace(ops);
        if ps == 0 {
            return 0.0;
        }
        bytes as f64 / (ps as f64 / 1e3)
    }

    /// The time the data bus is busy until — the channel's "current time"
    /// for back-to-back trace runs.
    pub fn busy_until(&self) -> Picos {
        self.bus_free_ps
    }

    /// Row-buffer hits so far.
    pub fn row_hits(&self) -> u64 {
        self.hits
    }

    /// Row-buffer misses so far.
    pub fn row_misses(&self) -> u64 {
        self.misses
    }

    /// Row-hit ratio in `[0, 1]`; 0 when no accesses occurred.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// An event-driven memory driver sleeps until the data bus frees instead
/// of polling the channel every controller cycle.
impl WakeSource for DramModel {
    fn next_wake(&self, now: Picos) -> Option<Picos> {
        (self.bus_free_ps > now).then_some(self.bus_free_ps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_bandwidths_match_datasheets() {
        assert!((DramTiming::ddr4_2400().peak_gbs() - 19.2).abs() < 0.1);
        assert!((DramTiming::ddr3_1600().peak_gbs() - 12.8).abs() < 0.1);
        assert!((DramTiming::hbm2_channel().peak_gbs() - 14.4).abs() < 0.1);
    }

    #[test]
    fn wake_source_tracks_bus_occupancy() {
        let mut m = DramModel::new(DramTiming::ddr4_2400());
        assert_eq!(m.next_wake(0), None, "idle channel needs no wake");
        let done = m.access(0, MemOp::read(0, 64));
        assert_eq!(m.next_wake(0), Some(m.busy_until()));
        assert!(m.busy_until() <= done);
        assert_eq!(m.next_wake(done), None, "bus free once the access retires");
    }

    #[test]
    fn sequential_reads_approach_peak() {
        let mut m = DramModel::new(DramTiming::ddr4_2400());
        let ops = (0..40_000u64).map(|i| MemOp::read(i * 64, 64));
        let bw = m.trace_bandwidth_gbs(ops);
        assert!(bw > 0.85 * 19.2, "sequential bw {bw:.2} GB/s too low");
        assert!(m.hit_ratio() > 0.95);
    }

    #[test]
    fn random_reads_are_much_slower() {
        let mut m = DramModel::new(DramTiming::ddr4_2400());
        // Pseudo-random 64 B reads over 1 GiB: nearly every access opens a
        // new row, so throughput is activation-limited.
        let mut addr = 0x1234_5678u64;
        let ops = (0..20_000u64).map(move |_| {
            addr = addr.wrapping_mul(6364136223846793005).wrapping_add(1);
            MemOp::read((addr >> 8) % (1 << 30), 64)
        });
        let bw = DramModel::new(DramTiming::ddr4_2400()).trace_bandwidth_gbs(ops.clone());
        let _ = &mut m;
        assert!(
            bw < 0.6 * 19.2,
            "random bw {bw:.2} GB/s unexpectedly close to peak"
        );
        assert!(bw > 1.0, "random bw {bw:.2} GB/s collapsed");
    }

    #[test]
    fn same_bank_row_thrash_is_worst_case() {
        let mut m = DramModel::new(DramTiming::ddr4_2400());
        // Stride keeps the bank fixed and changes the row every access.
        let stride = 8192u64 * 16 * 7;
        let bw = m.trace_bandwidth_gbs((0..5_000u64).map(|i| MemOp::read(i * stride, 64)));
        assert!(bw < 3.0, "row-thrash bw {bw:.2} GB/s too high");
        assert!(m.hit_ratio() < 0.01);
    }

    #[test]
    fn writes_and_reads_cost_the_same_bus_time() {
        let mut mr = DramModel::new(DramTiming::ddr4_2400());
        let mut mw = DramModel::new(DramTiming::ddr4_2400());
        let (pr, _) = mr.run_trace((0..1000u64).map(|i| MemOp::read(i * 64, 64)));
        let (pw, _) = mw.run_trace((0..1000u64).map(|i| MemOp::write(i * 64, 64)));
        assert_eq!(pr, pw);
    }

    #[test]
    fn read_write_interleave_pays_turnaround() {
        let mut alt = DramModel::new(DramTiming::ddr4_2400());
        let (p_alt, _) = alt.run_trace((0..1000u64).map(|i| {
            if i % 2 == 0 {
                MemOp::read(i * 64, 64)
            } else {
                MemOp::write(i * 64, 64)
            }
        }));
        let mut uni = DramModel::new(DramTiming::ddr4_2400());
        let (p_uni, _) = uni.run_trace((0..1000u64).map(|i| MemOp::read(i * 64, 64)));
        assert!(p_alt > p_uni);
    }

    #[test]
    fn larger_bursts_amortize_row_misses() {
        // Random placement: large requests pay one row activation per
        // kilobyte of data, small requests pay one per 64 B.
        let rand_addrs = |n: u64| {
            let mut a = 0x9E37u64;
            (0..n).map(move |_| {
                a = a.wrapping_mul(6364136223846793005).wrapping_add(1);
                (a >> 8) % (1 << 30)
            })
        };
        let mut small = DramModel::new(DramTiming::ddr4_2400());
        let mut large = DramModel::new(DramTiming::ddr4_2400());
        let (ps_s, b_s) = small.run_trace(rand_addrs(4096).map(|a| MemOp::read(a, 64)));
        let (ps_l, b_l) = large.run_trace(rand_addrs(256).map(|a| MemOp::read(a, 1024)));
        assert_eq!(b_s, b_l);
        assert!(ps_l < ps_s, "large {ps_l} ps vs small {ps_s} ps");
    }

    #[test]
    fn bank_state_tracks_hits() {
        let mut m = DramModel::new(DramTiming::ddr4_2400());
        m.access(0, MemOp::read(0, 64));
        // Same bank (16 bursts later), same row → hit.
        m.access(0, MemOp::read(64 * 16, 64));
        assert_eq!(m.row_hits(), 1);
        assert_eq!(m.row_misses(), 1);
    }

    #[test]
    fn completion_times_are_monotonic() {
        let mut m = DramModel::new(DramTiming::hbm2_channel());
        let mut last = 0;
        let mut addr = 7u64;
        for i in 0..1000 {
            addr = addr.wrapping_mul(6364136223846793005).wrapping_add(i);
            let done = m.access(0, MemOp::read(addr % (1 << 30), 64));
            assert!(done >= last);
            last = done;
        }
    }

    #[test]
    fn latency_includes_cas() {
        let mut m = DramModel::new(DramTiming::ddr4_2400());
        let done = m.access(0, MemOp::read(0, 64));
        let t = DramTiming::ddr4_2400();
        assert_eq!(done, t.row_miss_extra_ps + t.cas_ps + t.burst_ps);
    }

    #[test]
    fn faultless_access_is_bit_identical_to_plain() {
        use harmonia_sim::FaultInjector;
        let none = FaultInjector::none();
        let mut plain = DramModel::new(DramTiming::ddr4_2400());
        let mut faulty = DramModel::new(DramTiming::ddr4_2400());
        let mut addr = 3u64;
        for i in 0..500 {
            addr = addr.wrapping_mul(6364136223846793005).wrapping_add(i);
            let op = MemOp::read(addr % (1 << 30), 64);
            assert_eq!(plain.access(0, op), faulty.access_with_faults(0, op, &none));
        }
    }

    #[test]
    fn row_conflicts_and_scrubs_show_on_the_timeline() {
        use harmonia_sim::{FaultKind, FaultPlan, TraceCollector, TraceEventKind};
        let tc = TraceCollector::enabled();
        let mut m = DramModel::new(DramTiming::ddr4_2400());
        m.set_trace_collector(tc.clone());
        let inj = FaultPlan::new().at(0, FaultKind::EccError).injector();
        m.access_with_faults(0, MemOp::read(0, 64), &inj); // miss + ECC
        m.access(0, MemOp::read(64 * 16, 64)); // same row → hit, no event
        let trace = tc.take();
        let names: Vec<&str> = trace.events().iter().map(|e| e.kind.name()).collect();
        assert_eq!(names, vec!["dram-row-conflict", "ecc-scrub"]);
        let scrub = &trace.events()[1];
        assert_eq!(
            scrub.dur,
            DramTiming::ddr4_2400().ecc_scrub_penalty_ps(),
            "scrub span covers the replay penalty"
        );
        assert!(matches!(
            trace.events()[0].kind,
            TraceEventKind::DramRowConflict { bank: 0 }
        ));
    }

    #[test]
    fn scheduled_ecc_hit_pays_scrub_penalty() {
        use harmonia_sim::{FaultKind, FaultPlan};
        let t = DramTiming::ddr4_2400();
        // Fire the ECC event at time 0 so the first completing access eats it.
        let inj = FaultPlan::new().at(0, FaultKind::EccError).injector();
        let mut m = DramModel::new(DramTiming::ddr4_2400());
        let clean = t.row_miss_extra_ps + t.cas_ps + t.burst_ps;
        let done = m.access_with_faults(0, MemOp::read(0, 64), &inj);
        assert_eq!(done, clean + t.ecc_scrub_penalty_ps());
        assert_eq!(inj.report().ecc_errors, 1);
        // The event is one-shot: the next access is clean again.
        let next = m.access_with_faults(done, MemOp::read(0, 64), &inj);
        assert!(next < done + clean + t.ecc_scrub_penalty_ps());
    }
}
