//! PCIe DMA engine IP models (Gen3/4/5, ×8/×16).
//!
//! Models the Xilinx QDMA-style engine (AXI4-MM + AXI4-Stream, descriptor
//! queues) and the Intel P-tile/R-tile MCDMA-style engine (Avalon-MM).
//! The performance model charges 128b/130b line coding, TLP header overhead
//! against the maximum payload size, and a flow-control efficiency factor —
//! which reproduces the Figure 10b shape: throughput that climbs with
//! request size to a plateau below the raw link rate.

use crate::iface::{self, InterfaceSpec, SignalDir};
use crate::ip::{IpKind, VendorIp};
use crate::regfile::{Access, RegOp, RegisterFile};
use crate::resource::ResourceUsage;
use crate::vendor::Vendor;
use harmonia_sim::{Freq, Picos};

/// TLP header + framing overhead per transaction-layer packet, bytes.
const TLP_OVERHEAD_BYTES: u32 = 24;
/// Maximum TLP payload size the deployment configures, bytes.
const MAX_PAYLOAD_BYTES: u32 = 256;
/// DLLP/flow-control/replay efficiency factor.
const LINK_EFFICIENCY: f64 = 0.95;

/// A PCIe DMA engine instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PcieDmaIp {
    vendor: Vendor,
    gen: u8,
    lanes: u8,
}

impl PcieDmaIp {
    /// Number of DMA queues the engine exposes (the paper's Host RBB builds
    /// its 1K-queue isolation on top of these).
    pub const QUEUES: u32 = 1024;

    /// Creates a DMA engine model.
    ///
    /// # Panics
    ///
    /// Panics if `gen` is not 3–5 or `lanes` is not 8 or 16.
    pub fn new(vendor: Vendor, gen: u8, lanes: u8) -> Self {
        assert!((3..=5).contains(&gen), "unsupported PCIe generation {gen}");
        assert!(
            lanes == 8 || lanes == 16,
            "unsupported PCIe lane count {lanes}"
        );
        PcieDmaIp { vendor, gen, lanes }
    }

    /// PCIe generation (3, 4 or 5).
    pub fn gen(&self) -> u8 {
        self.gen
    }

    /// Lane count.
    pub fn lanes(&self) -> u8 {
        self.lanes
    }

    /// Raw link bandwidth in GB/s after line coding.
    pub fn raw_gbs(&self) -> f64 {
        let gt_per_lane = match self.gen {
            3 => 8.0,
            4 => 16.0,
            _ => 32.0,
        };
        // Gen3+ all use 128b/130b line coding (8b/10b ended with Gen2,
        // which the deployment never used).
        const CODING: f64 = 128.0 / 130.0;
        gt_per_lane * f64::from(self.lanes) * CODING / 8.0
    }

    /// Effective DMA throughput in GB/s for a given request size.
    pub fn throughput_gbs(&self, request_bytes: u32) -> f64 {
        assert!(request_bytes > 0, "zero-byte DMA request");
        // Each request splits into TLPs of at most MAX_PAYLOAD_BYTES.
        let payload = request_bytes.min(MAX_PAYLOAD_BYTES);
        let tlp_eff = f64::from(payload) / f64::from(payload + TLP_OVERHEAD_BYTES);
        // Small requests additionally pay per-request descriptor overhead.
        let desc_eff = f64::from(request_bytes) / (f64::from(request_bytes) + 64.0);
        self.raw_gbs() * tlp_eff * LINK_EFFICIENCY * desc_eff.min(1.0)
    }

    /// Round-trip latency of a DMA read of `request_bytes`, in ps: base
    /// request latency (host memory + root complex) plus transfer time.
    pub fn read_latency_ps(&self, request_bytes: u32) -> Picos {
        let base_ps: Picos = match self.gen {
            3 => 900_000,
            4 => 800_000,
            _ => 700_000,
        };
        let bw = self.throughput_gbs(request_bytes); // GB/s == B/ns
        base_ps + (f64::from(request_bytes) / bw * 1000.0) as Picos
    }

    /// User-side datapath width in bits (doubles per generation, §3.3.1).
    fn width_for(gen: u8, lanes: u8) -> u32 {
        match (gen, lanes) {
            (3, 8) => 256,
            (3, 16) | (4, 8) => 512,
            (4, 16) | (5, 8) => 1024,
            _ => 2048,
        }
    }
}

impl VendorIp for PcieDmaIp {
    fn kind(&self) -> IpKind {
        IpKind::Dma
    }

    fn vendor(&self) -> Vendor {
        self.vendor
    }

    fn instance_name(&self) -> String {
        format!(
            "{}-dma-gen{}x{}",
            self.vendor.to_string().to_lowercase().replace('-', ""),
            self.gen,
            self.lanes
        )
    }

    fn native_interface(&self) -> InterfaceSpec {
        let w = self.data_width_bits();
        match self.vendor {
            Vendor::Xilinx | Vendor::InHouse => {
                let mut spec = iface::axi4_mm("dma_axi_mm", w, 64);
                // QDMA-style descriptor bypass and completion interfaces.
                spec = spec
                    .signal("h2c_tdata", w, SignalDir::Out)
                    .signal("h2c_tvalid", 1, SignalDir::Out)
                    .signal("h2c_tready", 1, SignalDir::In)
                    .signal("h2c_tlast", 1, SignalDir::Out)
                    .signal("c2h_tdata", w, SignalDir::In)
                    .signal("c2h_tvalid", 1, SignalDir::In)
                    .signal("c2h_tready", 1, SignalDir::Out)
                    .signal("c2h_tlast", 1, SignalDir::In)
                    .signal("dsc_byp_load", 1, SignalDir::In)
                    .signal("dsc_byp_ready", 1, SignalDir::Out)
                    .signal("usr_irq_req", 16, SignalDir::In)
                    .signal("usr_irq_ack", 16, SignalDir::Out)
                    .config("MODE", "QDMA")
                    .config("PL_LINK_CAP_MAX_LINK_SPEED", format!("GEN{}", self.gen))
                    .config("PL_LINK_CAP_MAX_LINK_WIDTH", format!("X{}", self.lanes))
                    .config("AXI_DATA_WIDTH", w.to_string())
                    .config("MAX_PAYLOAD_SIZE", "256")
                    .config("MAX_READ_REQUEST_SIZE", "512")
                    .config("NUM_QUEUES", Self::QUEUES.to_string())
                    .config("SRIOV_CAP_ENABLE", "true")
                    .config("DESCRIPTOR_BYPASS", "true")
                    .config("MSIX_VECTORS", "32")
                    .config("BAR0_APERTURE", "64K")
                    .config("PCIE_BLOCK_LOCN", "X0Y1");
                spec
            }
            Vendor::Intel => iface::avalon_mm("dma_avmm", w, 64)
                .signal("rx_st_data", w, SignalDir::In)
                .signal("rx_st_valid", 1, SignalDir::In)
                .signal("rx_st_ready", 1, SignalDir::Out)
                .signal("tx_st_data", w, SignalDir::Out)
                .signal("tx_st_valid", 1, SignalDir::Out)
                .signal("tx_st_ready", 1, SignalDir::In)
                .signal("tx_cred", 8, SignalDir::In)
                .signal("msi_req", 1, SignalDir::Out)
                .config("HIP_MODE", "MCDMA")
                .config("PCIE_GEN", self.gen.to_string())
                .config("PCIE_LANES", self.lanes.to_string())
                .config("AVMM_WIDTH", w.to_string())
                .config("MAX_PAYLOAD", "256")
                .config("DMA_CHANNELS", Self::QUEUES.to_string())
                .config("ENABLE_SRIOV", "1")
                .config("COMPLETION_TIMEOUT", "ABCD")
                .config("VIRTUAL_FUNCTIONS", "16"),
        }
    }

    fn register_map(&self) -> RegisterFile {
        let mut rf = RegisterFile::new(self.instance_name());
        rf.define(0x000, "identifier", Access::ReadOnly, 0x1FD3_0001);
        rf.define(0x004, "global_ctrl", Access::ReadWrite, 0);
        rf.define(0x008, "global_status", Access::ReadOnly, 0);
        rf.define(0x00C, "ring_size", Access::ReadWrite, 512);
        rf.define(0x010, "wb_interval", Access::ReadWrite, 4);
        rf.define(0x014, "irq_vector", Access::ReadWrite, 0);
        rf.define(0x018, "func_map", Access::ReadWrite, 0);
        rf.define(0x01C, "queue_enable_base", Access::ReadWrite, 0);
        rf.define(0x020, "queue_arm", Access::WriteOnly, 0);
        rf.define(0x024, "link_status", Access::ReadOnly, 0);
        // Per-queue context registers (modelled for 16 queue blocks; real
        // engines index the rest indirectly through these).
        rf.define_block(0x100, "qctx_addr_lo_", 16, Access::ReadWrite, 0);
        rf.define_block(0x140, "qctx_addr_hi_", 16, Access::ReadWrite, 0);
        rf.define_block(0x180, "qctx_depth_", 16, Access::ReadWrite, 0);
        rf.define_block(0x1C0, "qstat_head_", 16, Access::ReadOnly, 0);
        rf.define_block(0x200, "qstat_tail_", 16, Access::ReadOnly, 0);
        rf
    }

    fn init_sequence(&self) -> Vec<RegOp> {
        let mut ops = Vec::new();
        match self.vendor {
            // QDMA-style: context programming per queue block with an arm +
            // status poll handshake.
            Vendor::Xilinx | Vendor::InHouse => {
                ops.push(RegOp::Write {
                    addr: 0x004,
                    value: 0x1,
                });
                ops.push(RegOp::WaitStatus {
                    addr: 0x024,
                    mask: 0x7,
                    expect: u32::from(self.gen),
                });
                ops.push(RegOp::Write {
                    addr: 0x00C,
                    value: 1024,
                });
                ops.push(RegOp::Write {
                    addr: 0x010,
                    value: 8,
                });
                for q in 0..8u32 {
                    ops.push(RegOp::Write {
                        addr: 0x100 + 4 * q,
                        value: 0x1000_0000 + q,
                    });
                    ops.push(RegOp::Write {
                        addr: 0x140 + 4 * q,
                        value: 0,
                    });
                    ops.push(RegOp::Write {
                        addr: 0x180 + 4 * q,
                        value: 512,
                    });
                    ops.push(RegOp::Write {
                        addr: 0x020,
                        value: q,
                    });
                    ops.push(RegOp::WaitStatus {
                        addr: 0x008,
                        mask: 0x1,
                        expect: 0x1,
                    });
                }
                ops.push(RegOp::Write {
                    addr: 0x014,
                    value: 0x20,
                });
                ops.push(RegOp::Read { addr: 0x000 });
            }
            // MCDMA-style: bulk writes, hardware sequences the contexts.
            Vendor::Intel => {
                ops.push(RegOp::Write {
                    addr: 0x004,
                    value: 0x3,
                });
                ops.push(RegOp::Write {
                    addr: 0x00C,
                    value: 2048,
                });
                ops.push(RegOp::Write {
                    addr: 0x018,
                    value: 0xFF,
                });
                for q in 0..8u32 {
                    ops.push(RegOp::Write {
                        addr: 0x100 + 4 * q,
                        value: 0x2000_0000 + q,
                    });
                    ops.push(RegOp::Write {
                        addr: 0x180 + 4 * q,
                        value: 1024,
                    });
                }
                ops.push(RegOp::Write {
                    addr: 0x01C,
                    value: 0xFF,
                });
                ops.push(RegOp::Read { addr: 0x024 });
            }
        }
        ops
    }

    fn resources(&self) -> ResourceUsage {
        let scale = u64::from(self.data_width_bits() / 256);
        match self.vendor {
            Vendor::Xilinx | Vendor::InHouse => {
                ResourceUsage::new(30_000 + 8_000 * scale, 45_000 + 10_000 * scale, 60 + 20 * scale, 8, 0)
            }
            Vendor::Intel => {
                ResourceUsage::new(26_000 + 7_000 * scale, 40_000 + 9_000 * scale, 120 + 40 * scale, 0, 0)
            }
        }
    }

    fn data_width_bits(&self) -> u32 {
        Self::width_for(self.gen, self.lanes)
    }

    fn core_clock(&self) -> Freq {
        match self.gen {
            3 => Freq::mhz(250),
            4 => Freq::mhz(250),
            _ => Freq::mhz(500),
        }
    }
}

/// The PCIe hard IP's own interface (PIPE/serial side plus configuration),
/// distinct from the DMA engine built on top of it — the Figure 3b "PCIe"
/// row.
pub fn pcie_hard_ip_spec(vendor: Vendor, gen: u8, lanes: u8) -> InterfaceSpec {
    match vendor {
        Vendor::Xilinx | Vendor::InHouse => {
            InterfaceSpec::new("pcie_hard_ip", crate::iface::Protocol::Proprietary)
                .signal_array("txp", u32::from(lanes), 1, SignalDir::Out)
                .signal_array("rxp", u32::from(lanes), 1, SignalDir::In)
                .signal("user_clk", 1, SignalDir::Out)
                .signal("user_reset", 1, SignalDir::Out)
                .signal("user_lnk_up", 1, SignalDir::Out)
                .signal("cfg_mgmt_addr", 10, SignalDir::In)
                .signal("cfg_mgmt_write_data", 32, SignalDir::In)
                .signal("cfg_mgmt_read_data", 32, SignalDir::Out)
                .signal("cfg_interrupt_int", 4, SignalDir::In)
                .signal("cfg_flr_done", 4, SignalDir::In)
                .config("PL_LINK_CAP_MAX_LINK_SPEED", format!("GEN{gen}"))
                .config("PL_LINK_CAP_MAX_LINK_WIDTH", format!("X{lanes}"))
                .config("AXISTEN_IF_EXT_512", "TRUE")
                .config("PF0_DEVICE_ID", "9038")
                .config("REF_CLK_FREQ", "100_MHz")
                .config("PCIE_BLK_LOCN", "X0Y1")
                .config("EXT_PIPE_SIM", "FALSE")
        }
        Vendor::Intel => InterfaceSpec::new("ptile_hip", crate::iface::Protocol::Proprietary)
            .signal_array("tx_out", u32::from(lanes), 1, SignalDir::Out)
            .signal_array("rx_in", u32::from(lanes), 1, SignalDir::In)
            .signal("coreclkout_hip", 1, SignalDir::Out)
            .signal("reset_status_n", 1, SignalDir::Out)
            .signal("link_up_o", 1, SignalDir::Out)
            .signal("tl_cfg_add", 5, SignalDir::Out)
            .signal("tl_cfg_ctl", 16, SignalDir::Out)
            .signal("app_int_sts", 1, SignalDir::In)
            .config("hip_reconfig", "disabled")
            .config("pld_clk_MHz", "250")
            .config("gen", gen.to_string())
            .config("lanes", lanes.to_string())
            .config("vsec_cap", "enabled")
            .config("slot_clock_config", "true"),
    }
}

/// The transaction-layer packet helper interface — the Figure 3b "TLP" row.
pub fn tlp_layer_spec(vendor: Vendor) -> InterfaceSpec {
    match vendor {
        Vendor::Xilinx | Vendor::InHouse => {
            InterfaceSpec::new("tlp_if", crate::iface::Protocol::Axi4Stream)
                .signal("rq_tdata", 512, SignalDir::Out)
                .signal("rq_tvalid", 1, SignalDir::Out)
                .signal("rq_tready", 1, SignalDir::In)
                .signal("rq_tuser", 137, SignalDir::Out)
                .signal("rc_tdata", 512, SignalDir::In)
                .signal("rc_tvalid", 1, SignalDir::In)
                .signal("rc_tuser", 161, SignalDir::In)
                .signal("cq_tdata", 512, SignalDir::In)
                .signal("cq_tuser", 183, SignalDir::In)
                .signal("cc_tdata", 512, SignalDir::Out)
                .signal("cc_tuser", 81, SignalDir::Out)
                .signal("pcie_tfc_nph_av", 4, SignalDir::In)
                .config("AXISTEN_IF_RQ_ALIGNMENT_MODE", "DWORD")
                .config("AXISTEN_IF_CC_ALIGNMENT_MODE", "DWORD")
                .config("AXISTEN_IF_ENABLE_CLIENT_TAG", "TRUE")
                .config("RQ_SEQ_NUM_ENABLE", "TRUE")
                .config("TPH_PRESENT", "FALSE")
        }
        Vendor::Intel => InterfaceSpec::new("tlp_avst", crate::iface::Protocol::AvalonStreaming)
            .signal("rx_st_data", 512, SignalDir::In)
            .signal("rx_st_sop", 2, SignalDir::In)
            .signal("rx_st_eop", 2, SignalDir::In)
            .signal("rx_st_empty", 6, SignalDir::In)
            .signal("rx_st_bar_range", 3, SignalDir::In)
            .signal("tx_st_data", 512, SignalDir::Out)
            .signal("tx_st_sop", 2, SignalDir::Out)
            .signal("tx_st_eop", 2, SignalDir::Out)
            .signal("tx_cred_hdr_fc", 8, SignalDir::In)
            .signal("tx_cred_data_fc", 12, SignalDir::In)
            .config("avst_width", "512")
            .config("sop_alignment", "any")
            .config("credit_mode", "header+data")
            .config("bar_check", "enabled"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hard_ip_and_tlp_specs_differ_across_vendors() {
        let d_hip = pcie_hard_ip_spec(Vendor::Xilinx, 4, 16)
            .diff(&pcie_hard_ip_spec(Vendor::Intel, 4, 16));
        assert!(d_hip.total() > 20, "PCIe hard-IP diff {}", d_hip.total());
        let d_tlp = tlp_layer_spec(Vendor::Xilinx).diff(&tlp_layer_spec(Vendor::Intel));
        assert!(d_tlp.total() > 20, "TLP diff {}", d_tlp.total());
        // And the three PCIe-stack rows of Figure 3b are distinct metrics.
        let d_dma = PcieDmaIp::new(Vendor::Xilinx, 4, 16)
            .native_interface()
            .diff(&PcieDmaIp::new(Vendor::Intel, 4, 16).native_interface());
        assert_ne!(d_hip.total(), d_tlp.total());
        assert_ne!(d_dma.total(), d_tlp.total());
    }

    #[test]
    fn raw_bandwidth_by_generation() {
        assert!((PcieDmaIp::new(Vendor::Xilinx, 3, 16).raw_gbs() - 15.75).abs() < 0.1);
        assert!((PcieDmaIp::new(Vendor::Xilinx, 4, 8).raw_gbs() - 15.75).abs() < 0.1);
        assert!((PcieDmaIp::new(Vendor::Intel, 4, 16).raw_gbs() - 31.5).abs() < 0.2);
        assert!((PcieDmaIp::new(Vendor::Intel, 5, 16).raw_gbs() - 63.0).abs() < 0.5);
    }

    #[test]
    fn throughput_climbs_to_plateau() {
        let dma = PcieDmaIp::new(Vendor::Xilinx, 4, 8);
        let t1k = dma.throughput_gbs(1024);
        let t4k = dma.throughput_gbs(4096);
        let t16k = dma.throughput_gbs(16384);
        assert!(t1k < t4k && t4k < t16k);
        // Plateau below raw: TLP + link efficiency caps near 86%.
        assert!(t16k < dma.raw_gbs());
        assert!(t16k > 0.8 * dma.raw_gbs());
    }

    #[test]
    fn latency_grows_with_request_size() {
        let dma = PcieDmaIp::new(Vendor::Intel, 4, 16);
        let l1k = dma.read_latency_ps(1024);
        let l16k = dma.read_latency_ps(16384);
        assert!(l16k > l1k);
        assert!(l1k > 800_000); // ≥ base latency
    }

    #[test]
    fn newer_generations_are_faster_and_lower_latency() {
        let g3 = PcieDmaIp::new(Vendor::Xilinx, 3, 16);
        let g4 = PcieDmaIp::new(Vendor::Xilinx, 4, 16);
        assert!(g4.throughput_gbs(8192) > g3.throughput_gbs(8192));
        assert!(g4.read_latency_ps(8192) < g3.read_latency_ps(8192));
    }

    #[test]
    fn width_doubles_with_generation() {
        assert_eq!(PcieDmaIp::new(Vendor::Xilinx, 3, 8).data_width_bits(), 256);
        assert_eq!(PcieDmaIp::new(Vendor::Xilinx, 4, 8).data_width_bits(), 512);
        assert_eq!(PcieDmaIp::new(Vendor::Xilinx, 5, 8).data_width_bits(), 1024);
        assert_eq!(
            PcieDmaIp::new(Vendor::Intel, 5, 16).data_width_bits(),
            2048
        );
    }

    #[test]
    fn vendor_init_sequences_differ_substantially() {
        let x = PcieDmaIp::new(Vendor::Xilinx, 4, 16).init_sequence();
        let i = PcieDmaIp::new(Vendor::Intel, 4, 16).init_sequence();
        let d = crate::regfile::script_diff(&x, &i);
        assert!(d > 30, "expected large migration diff, got {d}");
    }

    #[test]
    #[should_panic(expected = "unsupported PCIe generation")]
    fn bad_generation_rejected() {
        let _ = PcieDmaIp::new(Vendor::Xilinx, 6, 16);
    }

    #[test]
    #[should_panic(expected = "lane count")]
    fn bad_lanes_rejected() {
        let _ = PcieDmaIp::new(Vendor::Xilinx, 4, 4);
    }

    #[test]
    fn interface_diff_across_vendors_is_large() {
        let x = PcieDmaIp::new(Vendor::Xilinx, 4, 16).native_interface();
        let i = PcieDmaIp::new(Vendor::Intel, 4, 16).native_interface();
        let d = x.diff(&i);
        assert!(d.total() > 40, "got {}", d.total());
    }
}
