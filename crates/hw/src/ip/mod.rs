//! Vendor IP models.
//!
//! The specific-instance half of every RBB (§3.3.1) is a vendor IP: a MAC,
//! a PCIe DMA engine, a DDR controller or an HBM stack. Each model here
//! carries the four things the evaluation needs:
//!
//! 1. a **native interface** ([`InterfaceSpec`]) in the vendor's protocol —
//!    AXI for Xilinx dice, Avalon for Intel dice — whose differences drive
//!    Figure 3b;
//! 2. a **register map** and a vendor-specific **init sequence** — the
//!    ad-hoc software-modification source of Figures 3d and 13;
//! 3. a **resource footprint** for Figures 11/16/18a;
//! 4. a **performance model** (line rate, protocol overheads, DRAM timing)
//!    for Figures 10, 17 and 18b–d.

pub mod ddr;
pub mod dram;
pub mod hbm;
pub mod mac;
pub mod pcie;

pub use ddr::DdrIp;
pub use dram::{DramModel, DramTiming, MemOp};
pub use hbm::HbmIp;
pub use mac::MacIp;
pub use pcie::PcieDmaIp;

use crate::iface::InterfaceSpec;
use crate::regfile::{RegOp, RegisterFile};
use crate::resource::ResourceUsage;
use crate::vendor::Vendor;
use harmonia_sim::Freq;
use std::fmt;

/// The IP categories the paper analyzes (Figure 3b's x-axis plus HBM).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IpKind {
    /// Ethernet MAC (packet-level network processing).
    Mac,
    /// PCIe hard IP (physical/link layers).
    Pcie,
    /// DMA engine on top of PCIe.
    Dma,
    /// Transaction-layer packet processing helper.
    Tlp,
    /// DDR3/DDR4 memory controller.
    Ddr,
    /// High-bandwidth-memory controller.
    Hbm,
}

impl IpKind {
    /// The five kinds charted in Figure 3b.
    pub const FIG3B: [IpKind; 5] = [
        IpKind::Ddr,
        IpKind::Tlp,
        IpKind::Dma,
        IpKind::Pcie,
        IpKind::Mac,
    ];
}

impl fmt::Display for IpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IpKind::Mac => "MAC",
            IpKind::Pcie => "PCIe",
            IpKind::Dma => "DMA",
            IpKind::Tlp => "TLP",
            IpKind::Ddr => "DDR",
            IpKind::Hbm => "HBM",
        };
        f.write_str(s)
    }
}

/// Common surface of every vendor IP model.
///
/// This trait is object-safe: RBBs hold `Box<dyn VendorIp>` instances
/// selected at shell-tailoring time. `Send + Sync` lets shells holding
/// boxed IPs be shared across the `harmonia_sim::exec` worker pool.
pub trait VendorIp: fmt::Debug + Send + Sync {
    /// The IP category.
    fn kind(&self) -> IpKind;

    /// The die vendor whose toolchain ships this IP.
    fn vendor(&self) -> Vendor;

    /// A unique instance name, e.g. `xilinx-cmac-100g`.
    fn instance_name(&self) -> String;

    /// The vendor-native datapath interface.
    fn native_interface(&self) -> InterfaceSpec;

    /// The IP's register map (fresh copy at reset values).
    fn register_map(&self) -> RegisterFile;

    /// The vendor-specific initialization sequence software must run
    /// (absent Harmonia's command interface).
    fn init_sequence(&self) -> Vec<RegOp>;

    /// On-chip resource footprint of the IP plus its mandatory glue.
    fn resources(&self) -> ResourceUsage;

    /// Native datapath width in bits.
    fn data_width_bits(&self) -> u32;

    /// The IP's core clock.
    fn core_clock(&self) -> Freq;
}

/// Verifies that an init sequence actually initializes the IP: running it
/// against a fresh register map must succeed once the hardware has raised
/// any polled status bits.
///
/// # Errors
///
/// Returns the failing op's index and error message.
pub fn check_init_sequence(ip: &dyn VendorIp) -> Result<(), (usize, String)> {
    let mut rf = ip.register_map();
    for (i, op) in ip.init_sequence().iter().enumerate() {
        // Model the hardware raising status bits before software polls.
        if let RegOp::WaitStatus { addr, mask, expect } = *op {
            let cur = rf.read(addr).map_err(|e| (i, e.to_string()))?;
            rf.hw_set(addr, (cur & !mask) | expect)
                .map_err(|e| (i, e.to_string()))?;
        }
        rf.apply(op).map_err(|e| (i, e.to_string()))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3b_kind_list() {
        assert_eq!(IpKind::FIG3B.len(), 5);
        assert!(IpKind::FIG3B.contains(&IpKind::Mac));
        assert!(!IpKind::FIG3B.contains(&IpKind::Hbm));
    }

    #[test]
    fn kind_display() {
        assert_eq!(IpKind::Ddr.to_string(), "DDR");
        assert_eq!(IpKind::Tlp.to_string(), "TLP");
    }

    #[test]
    fn all_catalog_ips_have_valid_init_sequences() {
        let ips: Vec<Box<dyn VendorIp>> = vec![
            Box::new(MacIp::new(Vendor::Xilinx, 100)),
            Box::new(MacIp::new(Vendor::Intel, 100)),
            Box::new(MacIp::new(Vendor::Xilinx, 25)),
            Box::new(MacIp::new(Vendor::Intel, 400)),
            Box::new(PcieDmaIp::new(Vendor::Xilinx, 4, 8)),
            Box::new(PcieDmaIp::new(Vendor::Intel, 4, 16)),
            Box::new(PcieDmaIp::new(Vendor::Xilinx, 3, 16)),
            Box::new(DdrIp::new(Vendor::Xilinx, 4)),
            Box::new(DdrIp::new(Vendor::Intel, 4)),
            Box::new(HbmIp::new(Vendor::Xilinx)),
        ];
        for ip in &ips {
            check_init_sequence(ip.as_ref())
                .unwrap_or_else(|(i, e)| panic!("{} init op {i}: {e}", ip.instance_name()));
            assert!(!ip.resources().is_zero(), "{}", ip.instance_name());
            assert!(ip.data_width_bits() % 8 == 0);
        }
    }

    #[test]
    fn instance_names_unique_across_vendors() {
        let a = MacIp::new(Vendor::Xilinx, 100).instance_name();
        let b = MacIp::new(Vendor::Intel, 100).instance_name();
        assert_ne!(a, b);
    }
}
