//! Ethernet MAC IP models (25/100/400G).
//!
//! Models both the Xilinx CMAC-style core (AXI4-Stream, 512-bit) and the
//! Intel E-tile-style core (Avalon-ST). Data width scales 128/512/2048 bits
//! with 25/100/400 Gbps, exactly the parameter progression §3.3.1 describes
//! for the Network RBB.

use crate::iface::{self, InterfaceSpec, SignalDir};
use crate::ip::{IpKind, VendorIp};
use crate::regfile::{Access, RegOp, RegisterFile};
use crate::resource::ResourceUsage;
use crate::vendor::Vendor;
use harmonia_sim::{FaultInjector, FaultKind, Freq, Picos, TraceCollector, TraceEventKind};

/// Ethernet wire overhead per frame: 7 B preamble + 1 B SFD + 12 B IFG.
pub const WIRE_OVERHEAD_BYTES: u32 = 20;

/// An Ethernet MAC instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MacIp {
    vendor: Vendor,
    speed_gbps: u32,
}

impl MacIp {
    /// Creates a MAC model.
    ///
    /// # Panics
    ///
    /// Panics if `speed_gbps` is not one of 25, 100, 200, 400.
    pub fn new(vendor: Vendor, speed_gbps: u32) -> Self {
        assert!(
            matches!(speed_gbps, 25 | 100 | 200 | 400),
            "unsupported MAC speed {speed_gbps} Gbps"
        );
        MacIp { vendor, speed_gbps }
    }

    /// Line rate in Gbps.
    pub fn speed_gbps(&self) -> u32 {
        self.speed_gbps
    }

    /// Effective throughput in Gbps for a frame size (goodput: line rate
    /// scaled by the frame's share of wire time).
    pub fn throughput_gbps(&self, frame_bytes: u32) -> f64 {
        assert!(frame_bytes >= 64, "minimum Ethernet frame is 64 B");
        f64::from(self.speed_gbps) * f64::from(frame_bytes)
            / f64::from(frame_bytes + WIRE_OVERHEAD_BYTES)
    }

    /// Packets per second at line rate for a frame size.
    pub fn pps(&self, frame_bytes: u32) -> f64 {
        f64::from(self.speed_gbps) * 1e9 / (f64::from(frame_bytes + WIRE_OVERHEAD_BYTES) * 8.0)
    }

    /// Fixed datapath latency through the MAC (pipeline + gearbox), ps.
    pub fn pipeline_latency_ps(&self) -> Picos {
        // Hard-IP MACs sit near 80–120 ns; wider cores pay a little more
        // for alignment/gearboxing.
        match self.speed_gbps {
            25 => 90_000,
            100 => 100_000,
            200 => 110_000,
            _ => 120_000,
        }
    }

    /// Store-and-forward loopback latency for one frame, ps: serialization
    /// on the wire plus twice the datapath pipeline (TX + RX).
    pub fn loopback_latency_ps(&self, frame_bytes: u32) -> Picos {
        let wire_ps =
            (u64::from(frame_bytes) * 8 * 1000) / u64::from(self.speed_gbps); // bits / Gbps → ps
        wire_ps + 2 * self.pipeline_latency_ps()
    }

    /// Receives one frame through the fault plane at absolute time `now`:
    /// `Some(completion delay)` normally, `None` when the injector holds
    /// the link down (the frame is lost on the wire). With the no-op
    /// injector this is exactly `Some(loopback_latency_ps(frame_bytes))`.
    pub fn rx_frame_with_faults(
        &self,
        frame_bytes: u32,
        faults: &FaultInjector,
        now: Picos,
    ) -> Option<Picos> {
        if !faults.link_up(now) {
            return None;
        }
        Some(self.loopback_latency_ps(frame_bytes))
    }

    /// [`MacIp::rx_frame_with_faults`] with observability: a carried
    /// frame records a [`TraceEventKind::MacFrame`] span covering its
    /// loopback latency; a frame lost to a down link records a lost-frame
    /// instant plus the [`TraceEventKind::FaultInjected`] that killed it.
    /// With a disabled collector this is exactly `rx_frame_with_faults`.
    pub fn rx_frame_traced(
        &self,
        frame_bytes: u32,
        faults: &FaultInjector,
        now: Picos,
        trace: &TraceCollector,
    ) -> Option<Picos> {
        match self.rx_frame_with_faults(frame_bytes, faults, now) {
            Some(latency_ps) => {
                trace.span(
                    now,
                    latency_ps,
                    TraceEventKind::MacFrame {
                        bytes: frame_bytes,
                        lost: false,
                    },
                );
                Some(latency_ps)
            }
            None => {
                trace.instant(
                    now,
                    TraceEventKind::FaultInjected {
                        kind: FaultKind::LinkDown,
                    },
                );
                trace.instant(
                    now,
                    TraceEventKind::MacFrame {
                        bytes: frame_bytes,
                        lost: true,
                    },
                );
                None
            }
        }
    }

    fn stat_counter_count(&self) -> u32 {
        // Production MACs expose dozens of RMON counters; the wider cores
        // add per-virtual-lane alignment counters.
        match self.speed_gbps {
            25 => 34,
            100 => 42,
            200 => 46,
            _ => 50,
        }
    }
}

impl VendorIp for MacIp {
    fn kind(&self) -> IpKind {
        IpKind::Mac
    }

    fn vendor(&self) -> Vendor {
        self.vendor
    }

    fn instance_name(&self) -> String {
        format!(
            "{}-mac-{}g",
            self.vendor.to_string().to_lowercase().replace('-', ""),
            self.speed_gbps
        )
    }

    fn native_interface(&self) -> InterfaceSpec {
        let w = self.data_width_bits();
        match self.vendor {
            Vendor::Xilinx | Vendor::InHouse => iface::axi4_stream("mac_axis", w)
                .signal("rx_preambleout", 56, SignalDir::Out)
                .signal("tx_preamblein", 56, SignalDir::In)
                .signal("stat_rx_aligned", 1, SignalDir::Out)
                .signal("ctl_tx_enable", 1, SignalDir::In)
                .signal("ctl_rx_enable", 1, SignalDir::In)
                .signal("tx_ovfout", 1, SignalDir::Out)
                .signal("tx_unfout", 1, SignalDir::Out)
                .config("CMAC_CORE_MODE", format!("CAUI{}", self.speed_gbps / 25))
                .config("RX_FLOW_CONTROL", "false")
                .config("TX_FLOW_CONTROL", "false")
                .config("INCLUDE_RS_FEC", "true")
                .config("GT_REF_CLK_FREQ", "161.1328125")
                .config("USER_INTERFACE", "AXIS")
                .config("TX_OTN_INTERFACE", "false")
                .config("INCLUDE_STATISTICS_COUNTERS", "true")
                .config("LANE_ALIGNMENT_MODE", "auto")
                .config("RUNT_FRAME_SIZE", "64"),
            Vendor::Intel => iface::avalon_st("mac_avst", w)
                .signal("rx_error", 6, SignalDir::Out)
                .signal("tx_error", 1, SignalDir::In)
                .signal("rx_fcs_valid", 1, SignalDir::Out)
                .signal("tx_skip_crc", 1, SignalDir::In)
                .signal("rx_pfc", 8, SignalDir::Out)
                .config("ETH_RATE", format!("{}G", self.speed_gbps))
                .config("FEC_TYPE", "KP-FEC")
                .config("FLOW_CONTROL_MODE", "none")
                .config("READY_LATENCY", "0")
                .config("PTP_ACCURACY_MODE", "off")
                .config("EHIP_MODE", "MAC+PCS")
                .config("REF_CLK_FREQ_MHZ", "156.25")
                .config("CRC_FORWARDING", "enabled"),
        }
    }

    fn register_map(&self) -> RegisterFile {
        let mut rf = RegisterFile::new(self.instance_name());
        rf.define(0x000, "revision", Access::ReadOnly, 0x0100);
        rf.define(0x004, "ctl_tx", Access::ReadWrite, 0);
        rf.define(0x008, "ctl_rx", Access::ReadWrite, 0);
        rf.define(0x00C, "reset", Access::ReadWrite, 0);
        rf.define(0x010, "loopback", Access::ReadWrite, 0);
        rf.define(0x014, "fec_ctrl", Access::ReadWrite, 0);
        rf.define(0x018, "pause_ctrl", Access::ReadWrite, 0);
        rf.define(0x01C, "stat_rx_status", Access::ReadOnly, 0);
        rf.define(0x020, "stat_tx_status", Access::ReadOnly, 0);
        rf.define(0x024, "stat_aligned", Access::ReadOnly, 0);
        rf.define(0x028, "tick", Access::WriteOnly, 0);
        rf.define_block(0x100, "stat_rx_", self.stat_counter_count(), Access::ReadOnly, 0);
        rf.define_block(0x400, "stat_tx_", self.stat_counter_count(), Access::ReadOnly, 0);
        rf
    }

    fn init_sequence(&self) -> Vec<RegOp> {
        let mut ops = Vec::new();
        match self.vendor {
            // Xilinx-style bring-up (Figure 3d's "shell A"): reset, poll for
            // alignment, then enable lane by lane with interleaved status
            // checks.
            Vendor::Xilinx | Vendor::InHouse => {
                ops.push(RegOp::Write {
                    addr: 0x00C,
                    value: 0x7,
                });
                ops.push(RegOp::Write {
                    addr: 0x00C,
                    value: 0x0,
                });
                ops.push(RegOp::WaitStatus {
                    addr: 0x024,
                    mask: 0x1,
                    expect: 0x1,
                });
                ops.push(RegOp::Write {
                    addr: 0x014,
                    value: 0x3,
                });
                for lane in 0..(self.speed_gbps / 25) {
                    ops.push(RegOp::Write {
                        addr: 0x004,
                        value: 0x10 | lane,
                    });
                    ops.push(RegOp::WaitStatus {
                        addr: 0x020,
                        mask: 0x2,
                        expect: 0x2,
                    });
                }
                ops.push(RegOp::Write {
                    addr: 0x008,
                    value: 0x1,
                });
                ops.push(RegOp::WaitStatus {
                    addr: 0x01C,
                    mask: 0x1,
                    expect: 0x1,
                });
                ops.push(RegOp::Write {
                    addr: 0x018,
                    value: 0x0,
                });
                ops.push(RegOp::Read { addr: 0x000 });
            }
            // Intel-style bring-up (Figure 3d's "shell B"): calibration is
            // automated in hardware — software writes configuration values
            // directly, different addresses and no polling.
            Vendor::Intel => {
                ops.push(RegOp::Write {
                    addr: 0x010,
                    value: 0x0,
                });
                ops.push(RegOp::Write {
                    addr: 0x014,
                    value: 0x1,
                });
                ops.push(RegOp::Write {
                    addr: 0x004,
                    value: 0x1,
                });
                ops.push(RegOp::Write {
                    addr: 0x008,
                    value: 0x1,
                });
                ops.push(RegOp::Write {
                    addr: 0x018,
                    value: 0x0,
                });
                ops.push(RegOp::Read { addr: 0x01C });
                ops.push(RegOp::Read { addr: 0x000 });
            }
        }
        ops
    }

    fn resources(&self) -> ResourceUsage {
        // Soft logic around the hard MAC: gearboxes, CDC, statistics.
        let scale = match self.speed_gbps {
            25 => 1,
            100 => 2,
            200 => 3,
            _ => 4,
        };
        match self.vendor {
            Vendor::Xilinx | Vendor::InHouse => {
                ResourceUsage::new(6_000 * scale, 9_000 * scale, 9 * scale, 0, 0)
            }
            Vendor::Intel => ResourceUsage::new(5_000 * scale, 8_000 * scale, 15 * scale, 0, 0),
        }
    }

    fn data_width_bits(&self) -> u32 {
        match self.speed_gbps {
            25 => 128,
            100 => 512,
            200 => 1024,
            _ => 2048,
        }
    }

    fn core_clock(&self) -> Freq {
        match self.speed_gbps {
            25 => Freq::mhz(250),
            100 => Freq::khz(322_265),
            200 => Freq::mhz(350),
            _ => Freq::mhz(402),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_shape_matches_line_rate() {
        let mac = MacIp::new(Vendor::Xilinx, 100);
        // 64 B frames: 64/84 of line rate ≈ 76.2 Gbps.
        assert!((mac.throughput_gbps(64) - 76.19).abs() < 0.1);
        // 1500 B frames: ≈ 98.7 Gbps.
        assert!(mac.throughput_gbps(1500) > 98.0);
        // Monotone in frame size.
        assert!(mac.throughput_gbps(256) > mac.throughput_gbps(128));
    }

    #[test]
    fn pps_at_64b_is_148_8_mpps_for_100g() {
        let mac = MacIp::new(Vendor::Intel, 100);
        assert!((mac.pps(64) / 1e6 - 148.8).abs() < 0.1);
    }

    #[test]
    fn loopback_latency_grows_with_frame_size() {
        let mac = MacIp::new(Vendor::Xilinx, 100);
        assert!(mac.loopback_latency_ps(1024) > mac.loopback_latency_ps(64));
        // ~200 ns fixed part + serialization.
        assert!(mac.loopback_latency_ps(64) > 200_000);
    }

    #[test]
    fn width_scales_with_speed() {
        assert_eq!(MacIp::new(Vendor::Xilinx, 25).data_width_bits(), 128);
        assert_eq!(MacIp::new(Vendor::Xilinx, 100).data_width_bits(), 512);
        assert_eq!(MacIp::new(Vendor::Xilinx, 400).data_width_bits(), 2048);
    }

    #[test]
    fn vendor_interfaces_differ() {
        let x = MacIp::new(Vendor::Xilinx, 100).native_interface();
        let i = MacIp::new(Vendor::Intel, 100).native_interface();
        let d = x.diff(&i);
        assert!(d.interface > 10, "interface diffs {}", d.interface);
        assert!(d.configuration > 10, "config diffs {}", d.configuration);
    }

    #[test]
    fn xilinx_init_polls_intel_does_not() {
        let x = MacIp::new(Vendor::Xilinx, 100).init_sequence();
        let i = MacIp::new(Vendor::Intel, 100).init_sequence();
        assert!(x.iter().any(|op| matches!(op, RegOp::WaitStatus { .. })));
        assert!(!i.iter().any(|op| matches!(op, RegOp::WaitStatus { .. })));
        assert_ne!(x, i);
    }

    #[test]
    #[should_panic(expected = "unsupported MAC speed")]
    fn bad_speed_rejected() {
        let _ = MacIp::new(Vendor::Xilinx, 40);
    }

    #[test]
    #[should_panic(expected = "minimum Ethernet frame")]
    fn runt_frames_rejected() {
        let _ = MacIp::new(Vendor::Xilinx, 100).throughput_gbps(32);
    }

    #[test]
    fn register_map_has_stats_blocks() {
        let rf = MacIp::new(Vendor::Xilinx, 100).register_map();
        assert!(rf.len() > 80);
        assert!(rf.addr_of("stat_rx_0").is_some());
        assert!(rf.addr_of("stat_tx_41").is_some());
    }

    #[test]
    fn link_flap_loses_frames_in_the_window() {
        use harmonia_sim::{FaultKind, FaultPlan};
        let mac = MacIp::new(Vendor::Xilinx, 100);
        let inj = FaultPlan::new()
            .at(1_000_000, FaultKind::LinkDown)
            .at(2_000_000, FaultKind::LinkUp)
            .injector();
        assert_eq!(
            mac.rx_frame_with_faults(1500, &inj, 0),
            Some(mac.loopback_latency_ps(1500))
        );
        assert_eq!(mac.rx_frame_with_faults(1500, &inj, 1_500_000), None);
        assert!(mac.rx_frame_with_faults(1500, &inj, 2_000_000).is_some());
        // The no-op injector never drops.
        let none = FaultPlan::none().injector();
        assert!(mac.rx_frame_with_faults(64, &none, 1_500_000).is_some());
    }

    #[test]
    fn traced_frames_land_on_the_timeline() {
        use harmonia_sim::{FaultPlan, TraceCollector};
        let mac = MacIp::new(Vendor::Xilinx, 100);
        let inj = FaultPlan::new()
            .at(1_000_000, FaultKind::LinkDown)
            .injector();
        let tc = TraceCollector::enabled();
        // Carried frame: one span covering the loopback latency.
        let lat = mac.rx_frame_traced(1500, &inj, 0, &tc);
        assert_eq!(lat, mac.rx_frame_with_faults(1500, &inj, 0));
        // Lost frame: a fault instant plus a lost-frame instant.
        assert_eq!(mac.rx_frame_traced(1500, &inj, 1_500_000, &tc), None);
        let trace = tc.take();
        let names: Vec<_> = trace.events().iter().map(|e| e.kind.name()).collect();
        assert_eq!(names, ["mac-frame", "fault-injected", "mac-frame"]);
        assert_eq!(trace.events()[0].dur, mac.loopback_latency_ps(1500));
        assert!(trace.export_text().contains("lost=true"));
        // Disabled collector records nothing and changes nothing.
        let off = TraceCollector::disabled();
        let none = FaultPlan::none().injector();
        assert_eq!(
            mac.rx_frame_traced(64, &none, 0, &off),
            Some(mac.loopback_latency_ps(64))
        );
    }
}
