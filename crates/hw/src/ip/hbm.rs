//! HBM stack controller model (Xilinx HBM-enabled UltraScale+ parts).
//!
//! An 8 GiB HBM2 stack exposes 32 pseudo-channels behind an internal
//! crossbar; the aggregate bandwidth the paper quotes (460 GB/s, §3.3.1)
//! emerges from 32 × 14.4 GB/s channels. Only Xilinx dice in the catalog
//! carry HBM, so there is a single vendor flavour.

use crate::iface::{self, InterfaceSpec, SignalDir};
use crate::ip::dram::{DramModel, DramTiming, MemOp};
use crate::ip::{IpKind, VendorIp};
use crate::regfile::{Access, RegOp, RegisterFile};
use crate::resource::ResourceUsage;
use crate::vendor::Vendor;
use harmonia_sim::{Freq, Picos};

/// An HBM controller instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HbmIp {
    vendor: Vendor,
}

impl HbmIp {
    /// Number of pseudo-channels per stack.
    pub const CHANNELS: u32 = 32;

    /// Creates an HBM controller model.
    pub fn new(vendor: Vendor) -> Self {
        HbmIp { vendor }
    }

    /// Aggregate peak bandwidth across all channels, GB/s.
    pub fn aggregate_peak_gbs(&self) -> f64 {
        DramTiming::hbm2_channel().peak_gbs() * f64::from(Self::CHANNELS)
    }

    /// Creates the per-channel timing models.
    pub fn channels(&self) -> Vec<DramModel> {
        (0..Self::CHANNELS)
            .map(|_| DramModel::new(DramTiming::hbm2_channel()))
            .collect()
    }

    /// Runs a trace where each op is steered to `(addr / stride) % 32`
    /// channels — the default (un-interleaved) static mapping. Returns
    /// `(makespan_ps, bytes)`.
    pub fn run_striped_trace<I: IntoIterator<Item = MemOp>>(
        &self,
        ops: I,
        stripe_bytes: u64,
    ) -> (Picos, u64) {
        self.run_striped_trace_with_faults(ops, stripe_bytes, &harmonia_sim::FaultInjector::none())
    }

    /// [`HbmIp::run_striped_trace`] through the fault plane: each access
    /// consults the injector and pays the ECC scrub penalty when a hit
    /// fires. The no-op injector reproduces `run_striped_trace` exactly.
    pub fn run_striped_trace_with_faults<I: IntoIterator<Item = MemOp>>(
        &self,
        ops: I,
        stripe_bytes: u64,
        faults: &harmonia_sim::FaultInjector,
    ) -> (Picos, u64) {
        self.run_striped_trace_traced(
            ops,
            stripe_bytes,
            faults,
            &harmonia_sim::TraceCollector::disabled(),
        )
    }

    /// [`HbmIp::run_striped_trace_with_faults`] with an observability
    /// collector attached to every pseudo-channel: row conflicts and ECC
    /// scrubs land on the shared timeline (each channel stamps its own
    /// bank id). A disabled collector reproduces the untraced run
    /// bit-for-bit.
    pub fn run_striped_trace_traced<I: IntoIterator<Item = MemOp>>(
        &self,
        ops: I,
        stripe_bytes: u64,
        faults: &harmonia_sim::FaultInjector,
        trace: &harmonia_sim::TraceCollector,
    ) -> (Picos, u64) {
        assert!(stripe_bytes > 0, "stripe size must be non-zero");
        let mut channels = self.channels();
        for ch in &mut channels {
            ch.set_trace_collector(trace.clone());
        }
        let mut now = vec![0u64; channels.len()];
        let mut bytes = 0u64;
        for op in ops {
            let ch = ((op.addr / stripe_bytes) % u64::from(Self::CHANNELS)) as usize;
            now[ch] = channels[ch].access_with_faults(now[ch], op, faults);
            bytes += u64::from(op.bytes);
        }
        (now.into_iter().max().unwrap_or(0), bytes)
    }
}

impl VendorIp for HbmIp {
    fn kind(&self) -> IpKind {
        IpKind::Hbm
    }

    fn vendor(&self) -> Vendor {
        self.vendor
    }

    fn instance_name(&self) -> String {
        format!(
            "{}-hbm2",
            self.vendor.to_string().to_lowercase().replace('-', "")
        )
    }

    fn native_interface(&self) -> InterfaceSpec {
        iface::axi4_mm("hbm_axi", 256, 33)
            .signal("apb_complete", 1, SignalDir::Out)
            .signal("dram_stat_cattrip", 1, SignalDir::Out)
            .signal("dram_stat_temp", 7, SignalDir::Out)
            .config("STACK_COUNT", "1")
            .config("CHANNEL_ENABLE", "0xFFFFFFFF")
            .config("SWITCH_ENABLE", "true")
            .config("REORDER_EN", "true")
            .config("REFRESH_MODE", "single")
            .config("CLOCK_FREQ_MHZ", "900")
            .config("ECC_BYPASS", "false")
    }

    fn register_map(&self) -> RegisterFile {
        let mut rf = RegisterFile::new(self.instance_name());
        rf.define(0x000, "apb_status", Access::ReadOnly, 0);
        rf.define(0x004, "stack_ctrl", Access::ReadWrite, 0);
        rf.define(0x008, "temp", Access::ReadOnly, 35);
        rf.define(0x00C, "cattrip", Access::ReadOnly, 0);
        rf.define_block(0x100, "ch_enable_", 32, Access::ReadWrite, 1);
        rf.define_block(0x200, "ch_stat_", 32, Access::ReadOnly, 0);
        rf
    }

    fn init_sequence(&self) -> Vec<RegOp> {
        let mut ops = vec![
            RegOp::Write {
                addr: 0x004,
                value: 0x1,
            },
            RegOp::WaitStatus {
                addr: 0x000,
                mask: 0x1,
                expect: 0x1,
            },
        ];
        for ch in 0..8u32 {
            // Channels come up in groups of four.
            ops.push(RegOp::Write {
                addr: 0x100 + 16 * ch,
                value: 0xF,
            });
        }
        ops.push(RegOp::Read { addr: 0x008 });
        ops
    }

    fn resources(&self) -> ResourceUsage {
        ResourceUsage::new(14_000, 17_500, 58, 0, 0)
    }

    fn data_width_bits(&self) -> u32 {
        256
    }

    fn core_clock(&self) -> Freq {
        Freq::mhz(450)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_bandwidth_matches_paper() {
        let hbm = HbmIp::new(Vendor::Xilinx);
        assert!((hbm.aggregate_peak_gbs() - 460.8).abs() < 1.0);
    }

    #[test]
    fn channel_parallel_trace_beats_single_channel() {
        let hbm = HbmIp::new(Vendor::Xilinx);
        // Addresses striding across stripes hit all 32 channels.
        let spread = (0..32_000u64).map(|i| MemOp::read(i * 4096, 64));
        let (ps_spread, b) = hbm.run_striped_trace(spread, 4096);
        // All addresses in one stripe serialize on one channel.
        let narrow = (0..32_000u64).map(|i| MemOp::read((i * 64) % 4096, 64));
        let (ps_narrow, _) = hbm.run_striped_trace(narrow, 4096);
        assert_eq!(b, 32_000 * 64);
        assert!(
            ps_spread * 4 < ps_narrow,
            "parallel {ps_spread} ps vs serial {ps_narrow} ps"
        );
    }

    #[test]
    fn thirty_two_channels() {
        assert_eq!(HbmIp::new(Vendor::Xilinx).channels().len(), 32);
    }

    #[test]
    #[should_panic(expected = "stripe size")]
    fn zero_stripe_rejected() {
        let hbm = HbmIp::new(Vendor::Xilinx);
        let _ = hbm.run_striped_trace(std::iter::empty(), 0);
    }

    #[test]
    fn register_map_covers_channels() {
        let rf = HbmIp::new(Vendor::Xilinx).register_map();
        assert!(rf.addr_of("ch_enable_31").is_some());
        assert!(rf.addr_of("ch_stat_31").is_some());
    }

    #[test]
    fn ecc_hits_stretch_the_striped_trace() {
        use harmonia_sim::{FaultPlan, FaultRates};
        let hbm = HbmIp::new(Vendor::Xilinx);
        let ops = || (0..2_000u64).map(|i| MemOp::read(i * 64, 64));
        let (clean, bytes) = hbm.run_striped_trace(ops(), 256);
        let faulty_inj = FaultPlan::new()
            .with_rates(
                7,
                FaultRates {
                    ecc: 0.2,
                    ..FaultRates::default()
                },
            )
            .injector();
        let (faulty, fbytes) = hbm.run_striped_trace_with_faults(ops(), 256, &faulty_inj);
        assert_eq!(bytes, fbytes);
        assert!(faulty > clean, "ECC hits must cost time: {faulty} vs {clean}");
        assert!(faulty_inj.report().ecc_errors > 0);
        // The explicit no-op injector reproduces the plain trace exactly.
        let none = harmonia_sim::FaultInjector::none();
        assert_eq!(hbm.run_striped_trace_with_faults(ops(), 256, &none), (clean, bytes));
    }

    #[test]
    fn striped_run_surfaces_row_conflicts_and_scrubs() {
        use harmonia_sim::{FaultPlan, FaultRates, TraceCollector};
        let hbm = HbmIp::new(Vendor::Xilinx);
        // Two rows ping-ponging in one stripe: every access past the first
        // conflicts.
        let ops = || (0..64u64).map(|i| MemOp::read((i % 2) << 20, 64));
        let inj = FaultPlan::new()
            .with_rates(
                11,
                FaultRates {
                    ecc: 0.3,
                    ..FaultRates::default()
                },
            )
            .injector();
        let tc = TraceCollector::enabled();
        let (traced_ps, traced_bytes) = hbm.run_striped_trace_traced(ops(), 4096, &inj, &tc);
        let trace = tc.take();
        let conflicts = trace
            .events()
            .iter()
            .filter(|e| e.kind.name() == "dram-row-conflict")
            .count();
        let scrubs = trace
            .events()
            .iter()
            .filter(|e| e.kind.name() == "ecc-scrub")
            .count();
        assert!(conflicts >= 32, "only {conflicts} row conflicts traced");
        assert!(scrubs > 0, "ECC scrubs must reach the timeline");
        // Observational only: same makespan as the untraced fault run.
        let inj2 = FaultPlan::new()
            .with_rates(
                11,
                FaultRates {
                    ecc: 0.3,
                    ..FaultRates::default()
                },
            )
            .injector();
        assert_eq!(
            hbm.run_striped_trace_with_faults(ops(), 4096, &inj2),
            (traced_ps, traced_bytes)
        );
    }
}
