//! FPGA vendors, chip families and process nodes.
//!
//! §3.3.1 of the paper characterizes an "FPGA generation" by vendor, chip
//! family (process node) and device peripherals, and lists the families
//! Harmonia supports in production. This module encodes that taxonomy.

use std::fmt;

/// An FPGA silicon vendor.
///
/// The paper's deployment mixes commercially available Xilinx and Intel
/// parts with customized in-house devices ordered for supply-chain security
/// (§2.2).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Vendor {
    /// AMD/Xilinx devices (Virtex UltraScale(+), Zynq, Alveo boards).
    Xilinx,
    /// Intel/Altera devices (Agilex, Stratix, Arria).
    Intel,
    /// Custom in-house devices built around a commercial die but with a
    /// proprietary board, peripheral set and constraint flow.
    InHouse,
}

impl Vendor {
    /// All vendors, in display order.
    pub const ALL: [Vendor; 3] = [Vendor::Xilinx, Vendor::Intel, Vendor::InHouse];

    /// The vendor's native streaming/memory-mapped interface protocol
    /// family name.
    pub fn native_protocol_family(self) -> &'static str {
        match self {
            Vendor::Xilinx => "AXI",
            Vendor::Intel => "Avalon",
            // In-house boards reuse the die vendor's fabric protocols; the
            // deployment uses Xilinx-die and Intel-die in-house cards, but
            // the board-level integration is proprietary either way.
            Vendor::InHouse => "AXI",
        }
    }

    /// The vendor's CAD toolchain name, part of the vendor adapter's
    /// dependency key-value pairs (§3.2).
    pub fn cad_tool(self) -> &'static str {
        match self {
            Vendor::Xilinx => "vivado",
            Vendor::Intel => "quartus",
            Vendor::InHouse => "vivado",
        }
    }

    /// The vendor's IP packaging format key (§3.2: "specific IP packaging
    /// format").
    pub fn ip_package_format(self) -> &'static str {
        match self {
            Vendor::Xilinx => "ip-xact",
            Vendor::Intel => "qsys",
            Vendor::InHouse => "ip-xact",
        }
    }
}

impl fmt::Display for Vendor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Vendor::Xilinx => "Xilinx",
            Vendor::Intel => "Intel",
            Vendor::InHouse => "In-house",
        };
        f.write_str(s)
    }
}

/// A chip family with its process node, as enumerated in §3.3.1.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ChipFamily {
    /// Virtex UltraScale+ (XCVU3P/9P/23P/35P), 14/16 nm.
    VirtexUltraScalePlus,
    /// Virtex UltraScale (XCVU125), 20 nm.
    VirtexUltraScale,
    /// Zynq 7000 SoC, 28 nm.
    Zynq7000,
    /// Agilex 5/7, 10 nm ("Intel 7").
    Agilex,
    /// Stratix 10, 14 nm.
    Stratix10,
    /// Arria 10, 20 nm.
    Arria10,
}

impl ChipFamily {
    /// All supported families.
    pub const ALL: [ChipFamily; 6] = [
        ChipFamily::VirtexUltraScalePlus,
        ChipFamily::VirtexUltraScale,
        ChipFamily::Zynq7000,
        ChipFamily::Agilex,
        ChipFamily::Stratix10,
        ChipFamily::Arria10,
    ];

    /// The silicon vendor of the family.
    pub fn vendor(self) -> Vendor {
        match self {
            ChipFamily::VirtexUltraScalePlus
            | ChipFamily::VirtexUltraScale
            | ChipFamily::Zynq7000 => Vendor::Xilinx,
            ChipFamily::Agilex | ChipFamily::Stratix10 | ChipFamily::Arria10 => Vendor::Intel,
        }
    }

    /// Process node in nanometres (the finer of the published pair for
    /// dual-node families).
    pub fn process_nm(self) -> u8 {
        match self {
            ChipFamily::VirtexUltraScalePlus => 14,
            ChipFamily::VirtexUltraScale => 20,
            ChipFamily::Zynq7000 => 28,
            ChipFamily::Agilex => 10,
            ChipFamily::Stratix10 => 14,
            ChipFamily::Arria10 => 20,
        }
    }
}

impl fmt::Display for ChipFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ChipFamily::VirtexUltraScalePlus => "Virtex UltraScale+",
            ChipFamily::VirtexUltraScale => "Virtex UltraScale",
            ChipFamily::Zynq7000 => "Zynq 7000",
            ChipFamily::Agilex => "Agilex",
            ChipFamily::Stratix10 => "Stratix 10",
            ChipFamily::Arria10 => "Arria 10",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_vendor_mapping() {
        assert_eq!(ChipFamily::VirtexUltraScalePlus.vendor(), Vendor::Xilinx);
        assert_eq!(ChipFamily::Agilex.vendor(), Vendor::Intel);
        assert_eq!(ChipFamily::Zynq7000.vendor(), Vendor::Xilinx);
    }

    #[test]
    fn process_nodes_match_paper() {
        assert_eq!(ChipFamily::Agilex.process_nm(), 10);
        assert_eq!(ChipFamily::Stratix10.process_nm(), 14);
        assert_eq!(ChipFamily::Arria10.process_nm(), 20);
        assert_eq!(ChipFamily::Zynq7000.process_nm(), 28);
    }

    #[test]
    fn vendor_toolchains() {
        assert_eq!(Vendor::Xilinx.cad_tool(), "vivado");
        assert_eq!(Vendor::Intel.cad_tool(), "quartus");
        assert_eq!(Vendor::Intel.native_protocol_family(), "Avalon");
    }

    #[test]
    fn all_lists_are_complete_and_unique() {
        let mut v = Vendor::ALL.to_vec();
        v.dedup();
        assert_eq!(v.len(), 3);
        let mut f = ChipFamily::ALL.to_vec();
        f.dedup();
        assert_eq!(f.len(), 6);
    }

    #[test]
    fn display_nonempty() {
        for f in ChipFamily::ALL {
            assert!(!f.to_string().is_empty());
        }
        for v in Vendor::ALL {
            assert!(!v.to_string().is_empty());
        }
    }
}
