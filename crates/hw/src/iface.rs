//! Signal-level interface specifications.
//!
//! Vendor IPs "follow distinct interface protocols (e.g., AXI and Avalon)"
//! (§3.2), and Figure 3b quantifies the disparities between common modules
//! as counts of differing interfaces and configurations. This module
//! describes interfaces at the granularity needed for that analysis — named
//! signals with widths/directions plus configuration parameters — and
//! provides the difference metric.

use std::collections::BTreeMap;
use std::fmt;

/// An interface protocol family.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Protocol {
    /// AXI4-Stream (Xilinx streaming).
    Axi4Stream,
    /// Full AXI4 memory-mapped.
    Axi4MemoryMapped,
    /// AXI4-Lite (control registers).
    Axi4Lite,
    /// Avalon Streaming (Intel).
    AvalonStreaming,
    /// Avalon Memory-Mapped (Intel).
    AvalonMemoryMapped,
    /// A proprietary or IP-specific interface.
    Proprietary,
}

impl Protocol {
    /// Whether the protocol is a streaming (vs memory-mapped/control) kind.
    pub fn is_streaming(self) -> bool {
        matches!(self, Protocol::Axi4Stream | Protocol::AvalonStreaming)
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Protocol::Axi4Stream => "AXI4-Stream",
            Protocol::Axi4MemoryMapped => "AXI4-MM",
            Protocol::Axi4Lite => "AXI4-Lite",
            Protocol::AvalonStreaming => "Avalon-ST",
            Protocol::AvalonMemoryMapped => "Avalon-MM",
            Protocol::Proprietary => "proprietary",
        };
        f.write_str(s)
    }
}

/// Direction of a signal from the IP's perspective.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum SignalDir {
    /// Input to the IP.
    In,
    /// Output from the IP.
    Out,
    /// Bidirectional (e.g. DDR DQ pins).
    InOut,
}

/// One named signal of an interface.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SignalSpec {
    /// Signal name, e.g. `s_axis_tdata`.
    pub name: String,
    /// Bit width.
    pub width: u32,
    /// Direction.
    pub dir: SignalDir,
}

impl SignalSpec {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, width: u32, dir: SignalDir) -> Self {
        SignalSpec {
            name: name.into(),
            width,
            dir,
        }
    }
}

/// A configuration parameter exposed by a vendor IP (generics, GUI options,
/// constraint attributes).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ConfigParam {
    /// Parameter name.
    pub name: String,
    /// Default value as text.
    pub default: String,
}

impl ConfigParam {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, default: impl Into<String>) -> Self {
        ConfigParam {
            name: name.into(),
            default: default.into(),
        }
    }
}

/// A complete interface description of one module: protocol, signals and
/// configuration parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InterfaceSpec {
    name: String,
    protocol: Protocol,
    signals: Vec<SignalSpec>,
    configs: Vec<ConfigParam>,
}

impl InterfaceSpec {
    /// Creates an interface spec.
    pub fn new(name: impl Into<String>, protocol: Protocol) -> Self {
        InterfaceSpec {
            name: name.into(),
            protocol,
            signals: Vec::new(),
            configs: Vec::new(),
        }
    }

    /// Adds a signal (builder style).
    pub fn signal(mut self, name: impl Into<String>, width: u32, dir: SignalDir) -> Self {
        self.signals.push(SignalSpec::new(name, width, dir));
        self
    }

    /// Adds several indexed signals `prefix0..prefixN-1`.
    pub fn signal_array(
        mut self,
        prefix: &str,
        count: u32,
        width: u32,
        dir: SignalDir,
    ) -> Self {
        for i in 0..count {
            self.signals
                .push(SignalSpec::new(format!("{prefix}{i}"), width, dir));
        }
        self
    }

    /// Adds a configuration parameter (builder style).
    pub fn config(mut self, name: impl Into<String>, default: impl Into<String>) -> Self {
        self.configs.push(ConfigParam::new(name, default));
        self
    }

    /// Interface name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Protocol family.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// The signal list.
    pub fn signals(&self) -> &[SignalSpec] {
        &self.signals
    }

    /// The configuration parameters.
    pub fn configs(&self) -> &[ConfigParam] {
        &self.configs
    }

    /// Number of interface signals.
    pub fn signal_count(&self) -> usize {
        self.signals.len()
    }

    /// Number of configuration parameters.
    pub fn config_count(&self) -> usize {
        self.configs.len()
    }

    /// Computes the property differences between two specs — the Figure 3b
    /// metric. A signal counts as different when it exists on only one side
    /// or exists on both with a different width or direction; likewise for
    /// configuration parameters (by name / default value).
    pub fn diff(&self, other: &InterfaceSpec) -> InterfaceDiff {
        let mine: BTreeMap<&str, (u32, SignalDir)> = self
            .signals
            .iter()
            .map(|s| (s.name.as_str(), (s.width, s.dir)))
            .collect();
        let theirs: BTreeMap<&str, (u32, SignalDir)> = other
            .signals
            .iter()
            .map(|s| (s.name.as_str(), (s.width, s.dir)))
            .collect();
        let mut interface = 0usize;
        for (name, props) in &mine {
            match theirs.get(name) {
                None => interface += 1,
                Some(p) if p != props => interface += 1,
                _ => {}
            }
        }
        interface += theirs.keys().filter(|k| !mine.contains_key(*k)).count();

        let mcfg: BTreeMap<&str, &str> = self
            .configs
            .iter()
            .map(|c| (c.name.as_str(), c.default.as_str()))
            .collect();
        let tcfg: BTreeMap<&str, &str> = other
            .configs
            .iter()
            .map(|c| (c.name.as_str(), c.default.as_str()))
            .collect();
        let mut configuration = 0usize;
        for (name, val) in &mcfg {
            match tcfg.get(name) {
                None => configuration += 1,
                Some(v) if v != val => configuration += 1,
                _ => {}
            }
        }
        configuration += tcfg.keys().filter(|k| !mcfg.contains_key(*k)).count();

        InterfaceDiff {
            interface,
            configuration,
        }
    }
}

impl fmt::Display for InterfaceSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}]: {} signals, {} configs",
            self.name,
            self.protocol,
            self.signals.len(),
            self.configs.len()
        )
    }
}

/// Property-difference counts between two interface specs (Figure 3b bars).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct InterfaceDiff {
    /// Number of differing interface signals.
    pub interface: usize,
    /// Number of differing configuration parameters.
    pub configuration: usize,
}

impl InterfaceDiff {
    /// Total differing properties.
    pub fn total(&self) -> usize {
        self.interface + self.configuration
    }
}

/// Canonical AXI4-Stream signal set at a given data width.
pub fn axi4_stream(name: &str, width_bits: u32) -> InterfaceSpec {
    InterfaceSpec::new(name, Protocol::Axi4Stream)
        .signal("tdata", width_bits, SignalDir::Out)
        .signal("tkeep", width_bits / 8, SignalDir::Out)
        .signal("tvalid", 1, SignalDir::Out)
        .signal("tready", 1, SignalDir::In)
        .signal("tlast", 1, SignalDir::Out)
        .signal("tuser", 1, SignalDir::Out)
}

/// Canonical Avalon-ST signal set at a given data width.
pub fn avalon_st(name: &str, width_bits: u32) -> InterfaceSpec {
    InterfaceSpec::new(name, Protocol::AvalonStreaming)
        .signal("data", width_bits, SignalDir::Out)
        .signal("valid", 1, SignalDir::Out)
        .signal("ready", 1, SignalDir::In)
        .signal("startofpacket", 1, SignalDir::Out)
        .signal("endofpacket", 1, SignalDir::Out)
        .signal("empty", (width_bits / 8).ilog2(), SignalDir::Out)
        .signal("error", 1, SignalDir::Out)
        .signal("channel", 1, SignalDir::Out)
}

/// Canonical AXI4 memory-mapped signal set (read+write channels).
pub fn axi4_mm(name: &str, data_bits: u32, addr_bits: u32) -> InterfaceSpec {
    InterfaceSpec::new(name, Protocol::Axi4MemoryMapped)
        .signal("awaddr", addr_bits, SignalDir::Out)
        .signal("awlen", 8, SignalDir::Out)
        .signal("awsize", 3, SignalDir::Out)
        .signal("awburst", 2, SignalDir::Out)
        .signal("awvalid", 1, SignalDir::Out)
        .signal("awready", 1, SignalDir::In)
        .signal("wdata", data_bits, SignalDir::Out)
        .signal("wstrb", data_bits / 8, SignalDir::Out)
        .signal("wlast", 1, SignalDir::Out)
        .signal("wvalid", 1, SignalDir::Out)
        .signal("wready", 1, SignalDir::In)
        .signal("bresp", 2, SignalDir::In)
        .signal("bvalid", 1, SignalDir::In)
        .signal("bready", 1, SignalDir::Out)
        .signal("araddr", addr_bits, SignalDir::Out)
        .signal("arlen", 8, SignalDir::Out)
        .signal("arsize", 3, SignalDir::Out)
        .signal("arburst", 2, SignalDir::Out)
        .signal("arvalid", 1, SignalDir::Out)
        .signal("arready", 1, SignalDir::In)
        .signal("rdata", data_bits, SignalDir::In)
        .signal("rresp", 2, SignalDir::In)
        .signal("rlast", 1, SignalDir::In)
        .signal("rvalid", 1, SignalDir::In)
        .signal("rready", 1, SignalDir::Out)
}

/// Canonical Avalon memory-mapped signal set.
pub fn avalon_mm(name: &str, data_bits: u32, addr_bits: u32) -> InterfaceSpec {
    InterfaceSpec::new(name, Protocol::AvalonMemoryMapped)
        .signal("address", addr_bits, SignalDir::Out)
        .signal("read", 1, SignalDir::Out)
        .signal("readdata", data_bits, SignalDir::In)
        .signal("readdatavalid", 1, SignalDir::In)
        .signal("write", 1, SignalDir::Out)
        .signal("writedata", data_bits, SignalDir::Out)
        .signal("byteenable", data_bits / 8, SignalDir::Out)
        .signal("burstcount", 8, SignalDir::Out)
        .signal("waitrequest", 1, SignalDir::In)
}

/// Canonical AXI4-Lite control interface (32-bit).
pub fn axi4_lite(name: &str) -> InterfaceSpec {
    InterfaceSpec::new(name, Protocol::Axi4Lite)
        .signal("awaddr", 32, SignalDir::In)
        .signal("awvalid", 1, SignalDir::In)
        .signal("awready", 1, SignalDir::Out)
        .signal("wdata", 32, SignalDir::In)
        .signal("wstrb", 4, SignalDir::In)
        .signal("wvalid", 1, SignalDir::In)
        .signal("wready", 1, SignalDir::Out)
        .signal("bresp", 2, SignalDir::Out)
        .signal("bvalid", 1, SignalDir::Out)
        .signal("bready", 1, SignalDir::In)
        .signal("araddr", 32, SignalDir::In)
        .signal("arvalid", 1, SignalDir::In)
        .signal("arready", 1, SignalDir::Out)
        .signal("rdata", 32, SignalDir::Out)
        .signal("rresp", 2, SignalDir::Out)
        .signal("rvalid", 1, SignalDir::Out)
        .signal("rready", 1, SignalDir::In)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_of_identical_specs_is_zero() {
        let a = axi4_stream("s", 512);
        assert_eq!(a.diff(&a), InterfaceDiff::default());
    }

    #[test]
    fn diff_counts_missing_and_changed_signals() {
        let a = InterfaceSpec::new("a", Protocol::Proprietary)
            .signal("x", 8, SignalDir::In)
            .signal("y", 8, SignalDir::In);
        let b = InterfaceSpec::new("b", Protocol::Proprietary)
            .signal("x", 16, SignalDir::In) // width changed
            .signal("z", 8, SignalDir::In); // y missing, z extra
        let d = a.diff(&b);
        assert_eq!(d.interface, 3); // x changed + y only-left + z only-right
    }

    #[test]
    fn diff_counts_config_changes() {
        let a = InterfaceSpec::new("a", Protocol::Proprietary)
            .config("SPEED", "100G")
            .config("FEC", "rs544");
        let b = InterfaceSpec::new("b", Protocol::Proprietary)
            .config("SPEED", "100G")
            .config("FEC", "none")
            .config("LANES", "4");
        let d = a.diff(&b);
        assert_eq!(d.configuration, 2); // FEC changed + LANES extra
        assert_eq!(d.total(), 2);
    }

    #[test]
    fn axi_and_avalon_streams_differ_substantially() {
        let d = axi4_stream("tx", 512).diff(&avalon_st("tx", 512));
        // No shared signal names at all.
        assert_eq!(d.interface, 6 + 8);
    }

    #[test]
    fn canonical_mm_interfaces_have_expected_shape() {
        assert_eq!(axi4_mm("m", 512, 34).signal_count(), 25);
        assert_eq!(avalon_mm("m", 512, 34).signal_count(), 9);
        assert_eq!(axi4_lite("ctrl").signal_count(), 17);
        assert!(Protocol::Axi4Stream.is_streaming());
        assert!(!Protocol::Axi4Lite.is_streaming());
    }

    #[test]
    fn signal_array_builder() {
        let s = InterfaceSpec::new("clk", Protocol::Proprietary).signal_array(
            "refclk",
            4,
            1,
            SignalDir::In,
        );
        assert_eq!(s.signal_count(), 4);
        assert_eq!(s.signals()[3].name, "refclk3");
    }

    #[test]
    fn display_mentions_counts() {
        let s = axi4_stream("rx", 256).to_string();
        assert!(s.contains("6 signals"));
    }
}
