//! The heterogeneous FPGA device catalog.
//!
//! Table 2 of the paper evaluates four devices with distinct vendors, chip
//! families and peripherals. [`catalog`] reproduces that table; arbitrary
//! additional devices can be described with [`FpgaDevice::builder`].

use crate::resource::ResourceUsage;
use crate::vendor::{ChipFamily, Vendor};
use harmonia_sim::Freq;
use std::fmt;

/// Identifier of a device in the evaluation catalog.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DeviceId {
    /// Device A — Xilinx XCVU35P: HBM, DDR, QSFP×2, PCIe Gen4×8.
    A,
    /// Device B — in-house XCVU9P: DDR×2, QSFP×2, PCIe Gen3×16.
    B,
    /// Device C — in-house Agilex 7: DSFP×2, PCIe Gen4×16.
    C,
    /// Device D — Intel Agilex 7: QSFP×2, PCIe Gen4×16, DDR.
    D,
}

impl DeviceId {
    /// All catalog devices.
    pub const ALL: [DeviceId; 4] = [DeviceId::A, DeviceId::B, DeviceId::C, DeviceId::D];
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DeviceId::A => "Device A",
            DeviceId::B => "Device B",
            DeviceId::C => "Device C",
            DeviceId::D => "Device D",
        };
        f.write_str(s)
    }
}

/// An off-chip peripheral attached to an FPGA card.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Peripheral {
    /// QSFP network cage; the number is the supported line rate in Gbps
    /// (QSFP28 = 100, QSFP56 = 200, QSFP112 = 400).
    Qsfp { gbps: u32 },
    /// DSFP network cage at the given line rate.
    Dsfp { gbps: u32 },
    /// DDR3/DDR4 channel with capacity in GiB; `gen` is 3 or 4.
    Ddr { gen: u8, gib: u32 },
    /// High-bandwidth memory stack with capacity in GiB.
    Hbm { gib: u32 },
    /// PCIe endpoint: generation (3/4/5) and lane count.
    Pcie { gen: u8, lanes: u8 },
}

impl Peripheral {
    /// Whether this peripheral provides a network port.
    pub fn is_network(&self) -> bool {
        matches!(self, Peripheral::Qsfp { .. } | Peripheral::Dsfp { .. })
    }

    /// Whether this peripheral provides external memory.
    pub fn is_memory(&self) -> bool {
        matches!(self, Peripheral::Ddr { .. } | Peripheral::Hbm { .. })
    }

    /// Whether this peripheral provides a host link.
    pub fn is_host_link(&self) -> bool {
        matches!(self, Peripheral::Pcie { .. })
    }
}

impl fmt::Display for Peripheral {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Peripheral::Qsfp { gbps } => write!(f, "QSFP{}G", gbps),
            Peripheral::Dsfp { gbps } => write!(f, "DSFP{}G", gbps),
            Peripheral::Ddr { gen, gib } => write!(f, "DDR{gen}-{gib}GiB"),
            Peripheral::Hbm { gib } => write!(f, "HBM-{gib}GiB"),
            Peripheral::Pcie { gen, lanes } => write!(f, "PCIe Gen{gen}x{lanes}"),
        }
    }
}

/// A concrete FPGA card: chip, resources, peripherals and clocking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FpgaDevice {
    name: String,
    vendor: Vendor,
    family: ChipFamily,
    part: String,
    capacity: ResourceUsage,
    peripherals: Vec<Peripheral>,
    /// Reference clock sources available on the board.
    clock_sources: Vec<Freq>,
    /// Number of PCIe virtual functions the device exposes.
    virtual_functions: u16,
    /// Number of user I/O pins available for constraint mapping.
    io_pins: u32,
}

impl FpgaDevice {
    /// Starts building a device description.
    pub fn builder(name: impl Into<String>) -> FpgaDeviceBuilder {
        FpgaDeviceBuilder {
            name: name.into(),
            vendor: None,
            family: None,
            part: String::new(),
            capacity: ResourceUsage::zero(),
            peripherals: Vec::new(),
            clock_sources: Vec::new(),
            virtual_functions: 4,
            io_pins: 200,
        }
    }

    /// Human-readable device name ("Device A", board code, …).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Board vendor (may be [`Vendor::InHouse`] on a commercial die).
    pub fn vendor(&self) -> Vendor {
        self.vendor
    }

    /// Silicon family of the die.
    pub fn family(&self) -> ChipFamily {
        self.family
    }

    /// Die vendor — the vendor whose toolchain compiles for this device.
    /// For in-house boards this is the family's vendor, not `InHouse`.
    pub fn die_vendor(&self) -> Vendor {
        self.family.vendor()
    }

    /// Part number (e.g. "XCVU35P").
    pub fn part(&self) -> &str {
        &self.part
    }

    /// Total on-chip resources.
    pub fn capacity(&self) -> &ResourceUsage {
        &self.capacity
    }

    /// Attached peripherals.
    pub fn peripherals(&self) -> &[Peripheral] {
        &self.peripherals
    }

    /// Board reference clocks.
    pub fn clock_sources(&self) -> &[Freq] {
        &self.clock_sources
    }

    /// PCIe virtual functions exposed.
    pub fn virtual_functions(&self) -> u16 {
        self.virtual_functions
    }

    /// User I/O pins available for constraint mapping.
    pub fn io_pins(&self) -> u32 {
        self.io_pins
    }

    /// The device's PCIe endpoint, if present.
    pub fn pcie(&self) -> Option<(u8, u8)> {
        self.peripherals.iter().find_map(|p| match p {
            Peripheral::Pcie { gen, lanes } => Some((*gen, *lanes)),
            _ => None,
        })
    }

    /// Aggregate network bandwidth across all cages, in Gbps.
    pub fn network_gbps(&self) -> u32 {
        self.peripherals
            .iter()
            .map(|p| match p {
                Peripheral::Qsfp { gbps } | Peripheral::Dsfp { gbps } => *gbps,
                _ => 0,
            })
            .sum()
    }

    /// Whether the board has any HBM stack.
    pub fn has_hbm(&self) -> bool {
        self.peripherals
            .iter()
            .any(|p| matches!(p, Peripheral::Hbm { .. }))
    }

    /// Whether the board has any DDR channel.
    pub fn has_ddr(&self) -> bool {
        self.peripherals
            .iter()
            .any(|p| matches!(p, Peripheral::Ddr { .. }))
    }
}

impl fmt::Display for FpgaDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} {})", self.name, self.vendor, self.part)
    }
}

/// Builder for [`FpgaDevice`]; see [`FpgaDevice::builder`].
#[derive(Debug, Clone)]
pub struct FpgaDeviceBuilder {
    name: String,
    vendor: Option<Vendor>,
    family: Option<ChipFamily>,
    part: String,
    capacity: ResourceUsage,
    peripherals: Vec<Peripheral>,
    clock_sources: Vec<Freq>,
    virtual_functions: u16,
    io_pins: u32,
}

impl FpgaDeviceBuilder {
    /// Sets the board vendor.
    pub fn vendor(mut self, vendor: Vendor) -> Self {
        self.vendor = Some(vendor);
        self
    }

    /// Sets the chip family.
    pub fn family(mut self, family: ChipFamily) -> Self {
        self.family = Some(family);
        self
    }

    /// Sets the part number.
    pub fn part(mut self, part: impl Into<String>) -> Self {
        self.part = part.into();
        self
    }

    /// Sets the resource capacity.
    pub fn capacity(mut self, capacity: ResourceUsage) -> Self {
        self.capacity = capacity;
        self
    }

    /// Adds a peripheral.
    pub fn peripheral(mut self, p: Peripheral) -> Self {
        self.peripherals.push(p);
        self
    }

    /// Adds a board reference clock.
    pub fn clock_source(mut self, f: Freq) -> Self {
        self.clock_sources.push(f);
        self
    }

    /// Sets the PCIe virtual-function count.
    pub fn virtual_functions(mut self, vf: u16) -> Self {
        self.virtual_functions = vf;
        self
    }

    /// Sets the user I/O pin count.
    pub fn io_pins(mut self, pins: u32) -> Self {
        self.io_pins = pins;
        self
    }

    /// Finalizes the device.
    ///
    /// # Panics
    ///
    /// Panics if vendor or family were not set, or the capacity is zero —
    /// a device nothing can be placed on is always a description bug.
    pub fn build(self) -> FpgaDevice {
        let vendor = self.vendor.expect("device vendor must be set");
        let family = self.family.expect("device chip family must be set");
        assert!(
            !self.capacity.is_zero(),
            "device capacity must be non-zero"
        );
        FpgaDevice {
            name: self.name,
            vendor,
            family,
            part: self.part,
            capacity: self.capacity,
            peripherals: self.peripherals,
            clock_sources: self.clock_sources,
            virtual_functions: self.virtual_functions,
            io_pins: self.io_pins,
        }
    }
}

/// The four-device evaluation catalog of Table 2.
pub mod catalog {
    use super::*;

    /// Device A — Xilinx XCVU35P with HBM, DDR4, 2×QSFP, PCIe Gen4×8.
    ///
    /// Capacity from the Virtex UltraScale+ VU35P datasheet.
    pub fn device_a() -> FpgaDevice {
        FpgaDevice::builder("Device A")
            .vendor(Vendor::Xilinx)
            .family(ChipFamily::VirtexUltraScalePlus)
            .part("XCVU35P")
            .capacity(ResourceUsage::new(872_160, 1_744_320, 1_344, 320, 5_952))
            .peripheral(Peripheral::Hbm { gib: 8 })
            .peripheral(Peripheral::Ddr { gen: 4, gib: 32 })
            .peripheral(Peripheral::Qsfp { gbps: 100 })
            .peripheral(Peripheral::Qsfp { gbps: 100 })
            .peripheral(Peripheral::Pcie { gen: 4, lanes: 8 })
            .clock_source(Freq::mhz(100))
            .clock_source(Freq::khz(322_265))
            .virtual_functions(16)
            .io_pins(416)
            .build()
    }

    /// Device B — in-house board around a Xilinx XCVU9P: 2×DDR4, 2×QSFP,
    /// PCIe Gen3×16.
    pub fn device_b() -> FpgaDevice {
        FpgaDevice::builder("Device B")
            .vendor(Vendor::InHouse)
            .family(ChipFamily::VirtexUltraScalePlus)
            .part("XCVU9P")
            .capacity(ResourceUsage::new(1_182_240, 2_364_480, 2_160, 960, 6_840))
            .peripheral(Peripheral::Ddr { gen: 4, gib: 32 })
            .peripheral(Peripheral::Ddr { gen: 4, gib: 32 })
            .peripheral(Peripheral::Qsfp { gbps: 100 })
            .peripheral(Peripheral::Qsfp { gbps: 100 })
            .peripheral(Peripheral::Pcie { gen: 3, lanes: 16 })
            .clock_source(Freq::mhz(100))
            .clock_source(Freq::mhz(300))
            .virtual_functions(8)
            .io_pins(832)
            .build()
    }

    /// Device C — in-house board around an Intel Agilex 7: 2×DSFP,
    /// PCIe Gen4×16, no external DRAM.
    pub fn device_c() -> FpgaDevice {
        FpgaDevice::builder("Device C")
            .vendor(Vendor::InHouse)
            .family(ChipFamily::Agilex)
            .part("AGF014")
            .capacity(ResourceUsage::new(974_400, 1_948_800, 7_110, 0, 4_510))
            .peripheral(Peripheral::Dsfp { gbps: 200 })
            .peripheral(Peripheral::Dsfp { gbps: 200 })
            .peripheral(Peripheral::Pcie { gen: 4, lanes: 16 })
            .clock_source(Freq::mhz(100))
            .clock_source(Freq::mhz(250))
            .virtual_functions(8)
            .io_pins(624)
            .build()
    }

    /// Device D — Intel Agilex 7 dev card: 2×QSFP, PCIe Gen4×16, DDR4.
    pub fn device_d() -> FpgaDevice {
        FpgaDevice::builder("Device D")
            .vendor(Vendor::Intel)
            .family(ChipFamily::Agilex)
            .part("AGF014")
            .capacity(ResourceUsage::new(974_400, 1_948_800, 7_110, 0, 4_510))
            .peripheral(Peripheral::Qsfp { gbps: 100 })
            .peripheral(Peripheral::Qsfp { gbps: 100 })
            .peripheral(Peripheral::Pcie { gen: 4, lanes: 16 })
            .peripheral(Peripheral::Ddr { gen: 4, gib: 16 })
            .clock_source(Freq::mhz(100))
            .clock_source(Freq::mhz(250))
            .virtual_functions(16)
            .io_pins(624)
            .build()
    }

    /// Device E — a legacy Stratix 10 generation still alive in the fleet
    /// (§2.2: server lifecycles stretch four-plus years, so old
    /// generations coexist with new ones). Not part of Table 2's
    /// evaluation set, but exercised by the multi-generation tests:
    /// 2×25G, PCIe Gen3×8, DDR3.
    pub fn device_e_legacy() -> FpgaDevice {
        FpgaDevice::builder("Device E")
            .vendor(Vendor::Intel)
            .family(ChipFamily::Stratix10)
            .part("1SX280")
            .capacity(ResourceUsage::new(933_120, 1_866_240, 11_721, 0, 5_760))
            .peripheral(Peripheral::Qsfp { gbps: 25 })
            .peripheral(Peripheral::Qsfp { gbps: 25 })
            .peripheral(Peripheral::Pcie { gen: 3, lanes: 8 })
            .peripheral(Peripheral::Ddr { gen: 3, gib: 16 })
            .clock_source(Freq::mhz(100))
            .clock_source(Freq::mhz(125))
            .virtual_functions(4)
            .io_pins(480)
            .build()
    }

    /// Looks a catalog device up by id.
    pub fn device(id: DeviceId) -> FpgaDevice {
        match id {
            DeviceId::A => device_a(),
            DeviceId::B => device_b(),
            DeviceId::C => device_c(),
            DeviceId::D => device_d(),
        }
    }

    /// All four catalog devices.
    pub fn all() -> Vec<FpgaDevice> {
        DeviceId::ALL.iter().map(|&id| device(id)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_table_2() {
        let a = catalog::device_a();
        assert_eq!(a.vendor(), Vendor::Xilinx);
        assert_eq!(a.part(), "XCVU35P");
        assert!(a.has_hbm() && a.has_ddr());
        assert_eq!(a.pcie(), Some((4, 8)));

        let b = catalog::device_b();
        assert_eq!(b.vendor(), Vendor::InHouse);
        assert_eq!(b.die_vendor(), Vendor::Xilinx);
        assert_eq!(b.pcie(), Some((3, 16)));
        assert_eq!(
            b.peripherals().iter().filter(|p| p.is_memory()).count(),
            2
        );

        let c = catalog::device_c();
        assert_eq!(c.die_vendor(), Vendor::Intel);
        assert!(!c.has_ddr() && !c.has_hbm());
        assert_eq!(c.network_gbps(), 400);

        let d = catalog::device_d();
        assert_eq!(d.vendor(), Vendor::Intel);
        assert!(d.has_ddr());
    }

    #[test]
    fn uram_only_on_xilinx_dice() {
        for dev in catalog::all() {
            if dev.die_vendor() == Vendor::Intel {
                assert_eq!(dev.capacity().uram, 0, "{dev} should not have URAM");
            }
        }
    }

    #[test]
    fn peripheral_categories() {
        assert!(Peripheral::Qsfp { gbps: 100 }.is_network());
        assert!(Peripheral::Hbm { gib: 8 }.is_memory());
        assert!(Peripheral::Pcie { gen: 4, lanes: 8 }.is_host_link());
        assert!(!Peripheral::Ddr { gen: 4, gib: 16 }.is_network());
    }

    #[test]
    #[should_panic(expected = "vendor must be set")]
    fn builder_requires_vendor() {
        let _ = FpgaDevice::builder("x")
            .family(ChipFamily::Agilex)
            .capacity(ResourceUsage::new(1, 1, 1, 0, 1))
            .build();
    }

    #[test]
    #[should_panic(expected = "capacity must be non-zero")]
    fn builder_requires_capacity() {
        let _ = FpgaDevice::builder("x")
            .vendor(Vendor::Intel)
            .family(ChipFamily::Agilex)
            .build();
    }

    #[test]
    fn display_includes_part() {
        let a = catalog::device_a();
        let s = a.to_string();
        assert!(s.contains("XCVU35P") && s.contains("Device A"));
    }

    #[test]
    fn legacy_device_is_an_older_generation() {
        let e = catalog::device_e_legacy();
        assert_eq!(e.family(), ChipFamily::Stratix10);
        assert_eq!(e.family().process_nm(), 14);
        assert_eq!(e.network_gbps(), 50);
        assert_eq!(e.pcie(), Some((3, 8)));
        assert!(e
            .peripherals()
            .iter()
            .any(|p| matches!(p, Peripheral::Ddr { gen: 3, .. })));
    }

    #[test]
    fn catalog_lookup_consistent() {
        for id in DeviceId::ALL {
            assert_eq!(catalog::device(id).name(), id.to_string());
        }
        assert_eq!(catalog::all().len(), 4);
    }
}
