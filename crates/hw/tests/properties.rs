//! Property-based tests for the hardware substrate.

use harmonia_hw::ip::dram::{DramModel, DramTiming, MemOp};
use harmonia_hw::regfile::{script_diff, RegOp};
use harmonia_hw::resource::ResourceUsage;
use harmonia_testkit::prelude::*;

fn arb_regop() -> impl Strategy<Value = RegOp> {
    prop_oneof![
        (0u32..64).prop_map(|a| RegOp::Read { addr: a * 4 }),
        (0u32..64, any::<u32>()).prop_map(|(a, value)| RegOp::Write { addr: a * 4, value }),
        (0u32..64, 1u32..16, 0u32..16).prop_map(|(a, mask, expect)| RegOp::WaitStatus {
            addr: a * 4,
            mask,
            expect: expect & mask,
        }),
    ]
}

forall! {
    /// script_diff is a metric-like distance: identity, symmetry, and
    /// bounded by the sum of lengths.
    #[test]
    fn script_diff_is_distance_like(
        a in collection::vec(arb_regop(), 0..40),
        b in collection::vec(arb_regop(), 0..40),
    ) {
        prop_assert_eq!(script_diff(&a, &a), 0);
        prop_assert_eq!(script_diff(&a, &b), script_diff(&b, &a));
        prop_assert!(script_diff(&a, &b) <= a.len() + b.len());
        // Parity: LCS diff always has the same parity as len(a)+len(b).
        prop_assert_eq!((script_diff(&a, &b) + a.len() + b.len()) % 2, 0);
    }

    /// Appending one op to a script changes the diff by exactly one.
    #[test]
    fn script_diff_single_insertion(
        a in collection::vec(arb_regop(), 0..40),
        op in arb_regop(),
    ) {
        let mut b = a.clone();
        b.push(op);
        prop_assert_eq!(script_diff(&a, &b), 1);
    }

    /// Resource arithmetic: addition is commutative/associative, and
    /// percentages stay within [0, 100] when usage fits capacity.
    #[test]
    fn resource_arithmetic(
        a in (0u64..1000, 0u64..1000, 0u64..100, 0u64..10, 0u64..100),
        b in (0u64..1000, 0u64..1000, 0u64..100, 0u64..10, 0u64..100),
    ) {
        let ra = ResourceUsage::new(a.0, a.1, a.2, a.3, a.4);
        let rb = ResourceUsage::new(b.0, b.1, b.2, b.3, b.4);
        prop_assert_eq!(ra + rb, rb + ra);
        let cap = ra + rb;
        prop_assert!(ra.fits_in(&cap));
        prop_assert!(ra.max_percent_of(&cap) <= 100.0 + 1e-9);
        prop_assert!(ra.saturating_sub(&cap).is_zero());
        // Retargeting never changes non-URAM fields and always fits a
        // URAM-less capacity when scaled appropriately.
        let no_uram_cap = ResourceUsage::new(u64::MAX, u64::MAX, u64::MAX, 0, u64::MAX);
        let rt = ra.retargeted_for(&no_uram_cap);
        prop_assert_eq!(rt.uram, 0);
        prop_assert_eq!(rt.lut, ra.lut);
        prop_assert_eq!(rt.bram, ra.bram + ra.uram * 8);
    }

    /// DRAM completions are monotone and achieved bandwidth never exceeds
    /// the channel peak.
    #[test]
    fn dram_bandwidth_bounded(seed in any::<u64>(), n in 100usize..2000) {
        let timing = DramTiming::ddr4_2400();
        let mut m = DramModel::new(timing);
        let mut state = seed;
        let mut last = 0;
        let mut bytes = 0u64;
        for _ in 0..n {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let addr = (state >> 10) % (1 << 31);
            let done = m.access(0, MemOp::read(addr, 64));
            prop_assert!(done >= last, "completion time went backwards");
            last = done;
            bytes += 64;
        }
        let gbs = bytes as f64 / (last as f64 / 1e3);
        prop_assert!(gbs <= timing.peak_gbs() * 1.001, "bw {gbs} exceeds peak");
    }

    /// Row-buffer accounting: hits + misses equals accesses.
    #[test]
    fn dram_hit_accounting(n in 1usize..500, stride in 1u64..4096) {
        let mut m = DramModel::new(DramTiming::hbm2_channel());
        for i in 0..n as u64 {
            m.access(0, MemOp::read(i * stride, 32));
        }
        prop_assert_eq!(m.row_hits() + m.row_misses(), n as u64);
    }
}
