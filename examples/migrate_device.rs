//! Portability walkthrough: one role, four heterogeneous devices, zero
//! role-side changes — and what migration costs under the register
//! interface vs the command interface.
//!
//! ```sh
//! cargo run --example migrate_device
//! ```

use harmonia::frameworks::Framework;
use harmonia::host::migration_report;
use harmonia::hw::device::catalog;
use harmonia::{Harmonia, MemoryDemand, RoleSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let role = RoleSpec::builder("portable-nf")
        .network_gbps(100)
        .queues(128)
        .build();

    println!("== one role spec, every device ==");
    for device in catalog::all() {
        let d = Harmonia::deploy(&device, &role)?;
        println!(
            "{:<10} {:<18} -> {} RBBs, overhead {:.2}%",
            device.name(),
            format!("({} {})", device.vendor(), device.part()),
            d.shell().rbbs().len(),
            d.overhead_percent()
        );
    }

    println!("\n== what the baselines support (Table 3) ==");
    for device in catalog::all() {
        let supported: Vec<String> = Framework::ALL
            .iter()
            .filter(|f| f.supports(&device))
            .map(|f| f.to_string())
            .collect();
        println!("{:<10} {}", device.name(), supported.join(", "));
    }

    println!("\n== migration cost C -> D (Figure 13) ==");
    let on_c = role.clone();
    let on_d = RoleSpec::builder("portable-nf")
        .network_gbps(100)
        .queues(128)
        .memory(MemoryDemand::Ddr { channels: 1 }) // picks up D's DDR
        .build();
    let report = migration_report(&catalog::device_c(), &on_c, &catalog::device_d(), &on_d)?;
    println!(
        "register interface: {} modifications\ncommand interface:  {} modifications ({:.0}x reduction)",
        report.reg_modifications,
        report.cmd_modifications,
        report.reduction_factor()
    );
    Ok(())
}
