//! Full bump-in-the-wire pipeline: packets flow through the Network RBB's
//! packet filter and flow director, the Layer-4 LB role picks backends, and
//! the Host RBB's multi-queue isolation carries results to tenants.
//!
//! ```sh
//! cargo run --example l4lb_pipeline
//! ```

use harmonia::apps::common::to_packet_meta;
use harmonia::apps::l4lb::Backend;
use harmonia::apps::Layer4Lb;
use harmonia::hw::Vendor;
use harmonia::shell::rbb::network::RxDecision;
use harmonia::shell::rbb::{HostRbb, NetworkRbb};
use harmonia::workloads::PacketGen;

const LOCAL_MAC: u64 = 0x02_AA_BB_CC_DD_EE;

fn main() {
    // Shell side: a 100G Network RBB with 64 host queues, and the Host RBB.
    let mut network = NetworkRbb::with_speed(Vendor::Xilinx, 100, 64);
    network.add_local_mac(LOCAL_MAC);
    let mut host = HostRbb::with_link(Vendor::Xilinx, 4, 8);
    for q in 0..64 {
        host.activate(q).expect("queues in range");
    }

    // Role side: a stateful L4 LB over 8 backends.
    let mut lb = Layer4Lb::new(
        (0..8).map(|id| Backend { id, weight: 1 }).collect(),
        100_000,
    );

    // Traffic: 50k packets over 1k flows, 10% of it foreign (to be
    // filtered).
    let packets = PacketGen::new(7, LOCAL_MAC)
        .with_flows(1_000)
        .with_foreign_traffic(128, 50_000, 0.10);

    let mut dispatched = 0u64;
    let mut delivered = 0u64;
    for (i, wp) in packets.iter().enumerate() {
        let meta = to_packet_meta(wp);
        match network.process_rx(&meta) {
            RxDecision::Filtered => continue,
            RxDecision::Deliver { queue } => {
                if lb.dispatch(&meta).is_some() {
                    // Forward the LB verdict to the tenant's host queue.
                    let _ = host.enqueue(queue, meta.bytes);
                    dispatched += 1;
                }
            }
        }
        // The DMA engine drains concurrently; model it every few packets.
        if i % 4 == 0 {
            for _ in 0..3 {
                if host.schedule().is_some() {
                    delivered += 1;
                }
            }
        }
    }
    while host.schedule().is_some() {
        delivered += 1;
    }

    let net = network.stats();
    let lbs = lb.stats();
    println!("packets offered:    50000");
    println!("filtered (foreign): {}", net.filtered);
    println!("delivered to role:  {}", net.rx_packets);
    println!("new connections:    {}", lbs.new_connections);
    println!("established hits:   {}", lbs.established_hits);
    println!("dispatched:         {dispatched}");
    println!("delivered to hosts: {delivered}");
    println!(
        "scheduler examined {:.2} slots per dequeue (active-ring)",
        host.sched_visits() as f64 / delivered.max(1) as f64
    );

    // The datapath performance this pipeline sustains (Figure 17b).
    let path = lb.datapath();
    for size in [64u32, 512, 1024] {
        let p = path.perf(size);
        println!(
            "{size:>5} B frames: {:.2} Gbps, {:.3} us end-to-end",
            p.throughput,
            p.latency_us()
        );
    }
}
