//! Quickstart: deploy a role onto a heterogeneous FPGA and talk to it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use harmonia::cmd::CommandCode;
use harmonia::hw::device::catalog;
use harmonia::shell::rbb::RbbKind;
use harmonia::{Harmonia, MemoryDemand, RoleSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick a device from the heterogeneous catalog (Table 2).
    let device = catalog::device_a();
    println!("deploying on {device}");

    // 2. Describe what the role needs — nothing about the platform.
    let role = RoleSpec::builder("quickstart")
        .network_gbps(100)
        .memory(MemoryDemand::Hbm)
        .queues(128)
        .build();
    println!("role demands: {role}");

    // 3. One call runs the whole §4 lifecycle: adapters, dependency
    //    inspection, shell tailoring, control-kernel attach, module init.
    let mut deployment = Harmonia::deploy(&device, &role)?;
    println!(
        "deployed: {} RBBs, shell uses {}",
        deployment.shell().rbbs().len(),
        deployment.shell_resources()
    );
    println!(
        "harmonia overhead: {:.2}% of the device (wrappers + control kernel)",
        deployment.overhead_percent()
    );

    // 4. Control the hardware through commands, not registers.
    let health = deployment
        .driver_mut()
        .cmd_raw(0, 0, CommandCode::HealthRead, Vec::new())?;
    println!(
        "board health: fpga {}°C, board {}°C, vccint {} mV",
        health.data[0], health.data[1], health.data[2]
    );

    let stats = deployment.driver_mut().cmd(
        RbbKind::Network,
        0,
        CommandCode::StatsRead,
        Vec::new(),
    )?;
    println!("network RBB exposes {} monitor counters", stats.data.len());

    // 5. Install a flow-director entry — one command, any platform.
    deployment.driver_mut().cmd(
        RbbKind::Network,
        0,
        CommandCode::TableWrite,
        vec![7, 0x0A00_0001, 0x0050_0006],
    )?;
    println!("flow-table entry installed; done.");
    Ok(())
}
