//! Embedding retrieval on the look-aside architecture: real top-K over a
//! synthetic corpus, plus the bandwidth-bound QPS model across corpus
//! scales (Figure 17d).
//!
//! ```sh
//! cargo run --example retrieval_topk
//! ```

use harmonia::apps::RetrievalEngine;
use harmonia::sim::Freq;

fn main() {
    // A real (materialized) corpus: 50k embeddings of dimension 64.
    let engine = RetrievalEngine::synthetic(2024, 50_000, 64);
    let query: Vec<f32> = (0..64).map(|i| (i as f32 * 0.13).sin()).collect();

    let top = engine.top_k(&query, 8);
    println!("top-8 of {} items:", engine.items());
    for c in &top {
        println!("  item {:>6}  score {:+.4}", c.index, c.score);
    }

    // The accelerator model: scan rate from HBM bandwidth vs compute lanes.
    let clock = Freq::mhz(450);
    println!("\ncorpus scaling (per-shard scan, 2048 MAC lanes @ {clock}):");
    for exp in [4u32, 5, 6, 7, 9] {
        let items = 10u64.pow(exp);
        let model = RetrievalEngine::capacity_only(items, 64);
        let perf = model.sharded_perf(2048, clock, true);
        println!(
            "  1e{exp} items: {:>10.1} QPS/shard, {:>9.1} us/query",
            perf.throughput,
            perf.latency_us()
        );
    }
}
