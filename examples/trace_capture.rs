//! Capture a deterministic timeline of an L4-LB deployment under faults.
//!
//! Brings a tailored Layer-4 LB shell up through the resilient command
//! driver while a fault plan flaps the PCIe link, pushes a burst of frames
//! through the 100G MAC, then sweeps module statistics. The capture is
//! exported as Chrome/Perfetto trace-event JSON (load it at
//! <https://ui.perfetto.dev>) next to a plain-text timeline head and the
//! command-latency histogram.
//!
//! ```sh
//! cargo run --example trace_capture
//! ```

use harmonia::cmd::UnifiedControlKernel;
use harmonia::host::{CommandDriver, DmaEngine};
use harmonia::hw::device::catalog;
use harmonia::hw::ip::{MacIp, PcieDmaIp};
use harmonia::hw::Vendor;
use harmonia::shell::{RoleSpec, TailoredShell, UnifiedShell};
use harmonia::sim::{FaultKind, FaultPlan, FaultRates, TraceCollector};

fn main() {
    // Shell side: a 100G Layer-4 LB role tailored onto device A.
    let dev = catalog::device_a();
    let unified = UnifiedShell::for_device(&dev);
    let role = RoleSpec::builder("l4lb")
        .network_gbps(100)
        .queues(64)
        .build();
    let mut shell = TailoredShell::tailor(&unified, &role).expect("role fits device A");
    let mut kernel = UnifiedControlKernel::new(64);
    kernel.attach_shell(shell.rbbs().iter().map(|r| r.as_ref()));

    // Host side: resilient driver with tracing forced on and a fault plan
    // that flaps the link mid-bring-up and drops a few percent of
    // commands.
    let (gen, lanes) = dev.pcie().expect("device A has PCIe");
    let mut driver = CommandDriver::new(
        DmaEngine::new(PcieDmaIp::new(Vendor::Xilinx, gen, lanes)),
        kernel,
    );
    let trace = TraceCollector::enabled();
    driver.set_trace_collector(trace.clone());
    let injector = FaultPlan::new()
        .at(0, FaultKind::LinkDown)
        .at(30_000_000, FaultKind::LinkUp)
        .with_rates(
            42,
            FaultRates {
                cmd_drop: 0.05,
                ..FaultRates::default()
            },
        )
        .injector();
    driver.set_fault_injector(injector.clone());
    driver
        .init_shell_resilient(&mut shell)
        .expect("bring-up converges under the plan");

    // Datapath: a burst of frames through the 100G MAC while the fault
    // plan is still live; lost frames land on the timeline too.
    let mac = MacIp::new(Vendor::Xilinx, 100);
    let mut now = driver.clock_ps();
    let mut carried = 0u32;
    for i in 0..32u32 {
        let bytes = if i % 3 == 0 { 1500 } else { 64 };
        if mac.rx_frame_traced(bytes, &injector, now, &trace).is_some() {
            carried += 1;
        }
        now += 672_000; // ~1500 B at 100G wire pacing between arrivals
    }

    // Monitoring sweep: every module's statistics plus board health.
    let stats = driver
        .read_all_stats_resilient(&shell)
        .expect("monitoring sweep succeeds");

    let timeline = trace.take();
    let perfetto = timeline.export_perfetto();
    let out = std::path::Path::new("target").join("trace_capture.json");
    if std::fs::write(&out, &perfetto).is_ok() {
        println!("perfetto trace:     {} ({} bytes)", out.display(), perfetto.len());
    }
    println!("driver report:      {}", driver.report());
    println!("mac frames carried: {carried}/32");
    println!("stats words read:   {}", stats.len());
    println!("fault plane:        {}", injector.report());
    println!();
    println!("timeline head:");
    for line in timeline.export_text().lines().take(12) {
        println!("  {line}");
    }
    println!("  … {} events total", timeline.len());
    println!();
    println!("command latency (ps): {}", driver.latency_histogram());
    print!("{}", driver.latency_histogram().render());
}
