//! Extending the shell with a custom RBB.
//!
//! The RBB abstraction is open: anything with a vendor instance, reusable
//! logic and a register file can join the unified shell and the command
//! interface. This example builds a compression-offload RBB around the
//! Memory RBB's category and attaches it to the control kernel.
//!
//! ```sh
//! cargo run --example custom_rbb
//! ```

use harmonia::cmd::{CommandCode, CommandPacket, ModuleHandle, SrcId, UnifiedControlKernel};
use harmonia::hw::ip::{DdrIp, VendorIp};
use harmonia::hw::regfile::{Access, RegisterFile};
use harmonia::hw::resource::ResourceUsage;
use harmonia::hw::Vendor;
use harmonia::metrics::config::{ConfigClass, ConfigInventory};
use harmonia::shell::rbb::{LogicComponent, LogicPart, Portability, Rbb, RbbKind};

/// A compression-offload building block: LZ-class compressor fed from DDR.
#[derive(Debug)]
struct CompressionRbb {
    backing: DdrIp,
    components: Vec<LogicComponent>,
}

impl CompressionRbb {
    fn new(die: Vendor) -> Self {
        CompressionRbb {
            backing: DdrIp::new(die, 4),
            components: vec![
                LogicComponent {
                    name: "lz-engine",
                    part: LogicPart::ExFunction,
                    portability: Portability::Universal,
                    loc: 4_200,
                    resources: ResourceUsage::new(6_500, 9_000, 24, 0, 0),
                },
                LogicComponent {
                    name: "stat-core",
                    part: LogicPart::Monitoring,
                    portability: Portability::Universal,
                    loc: 900,
                    resources: ResourceUsage::new(1_100, 1_700, 1, 0, 0),
                },
                LogicComponent {
                    name: "instance-glue",
                    part: LogicPart::InstanceGlue,
                    portability: Portability::ChipBound,
                    loc: 600,
                    resources: ResourceUsage::new(800, 1_200, 0, 0, 0),
                },
            ],
        }
    }

    /// The role-facing function: a toy LZ-style run-length compressor so
    /// the example actually computes something verifiable.
    fn compress(&self, data: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < data.len() {
            let b = data[i];
            let mut run = 1usize;
            while i + run < data.len() && data[i + run] == b && run < 255 {
                run += 1;
            }
            out.push(run as u8);
            out.push(b);
            i += run;
        }
        out
    }

    fn decompress(&self, data: &[u8]) -> Vec<u8> {
        data.chunks_exact(2)
            .flat_map(|c| std::iter::repeat_n(c[1], usize::from(c[0])))
            .collect()
    }
}

impl Rbb for CompressionRbb {
    fn kind(&self) -> RbbKind {
        RbbKind::Memory // it lives in the storage category
    }

    fn instance(&self) -> &dyn VendorIp {
        &self.backing
    }

    fn components(&self) -> &[LogicComponent] {
        &self.components
    }

    fn register_file(&self) -> RegisterFile {
        let mut rf = RegisterFile::new("compression-rbb");
        rf.define(0x000, "ctrl", Access::ReadWrite, 0);
        rf.define(0x004, "status", Access::ReadOnly, 1);
        rf.define(0x008, "level", Access::ReadWrite, 6);
        rf.define_block(0x100, "mon_bytes_", 4, Access::ReadOnly, 0);
        rf
    }

    fn config_inventory(&self) -> ConfigInventory {
        let mut inv = ConfigInventory::new("compression-rbb");
        inv.add("level", ConfigClass::RoleOriented);
        inv.add_all(
            ["window_log2", "dict_init", "stream_depth"],
            ConfigClass::ShellOriented,
        );
        inv
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rbb = CompressionRbb::new(Vendor::Xilinx);
    println!(
        "custom RBB '{}' uses {}",
        rbb.instance().instance_name(),
        rbb.resources()
    );

    // Functional check of the role-facing engine.
    let input = b"aaaaabbbbbbbbcddddddddddddddddddddddddddddddddddddddddddddd";
    let packed = rbb.compress(input);
    assert_eq!(rbb.decompress(&packed), input);
    println!(
        "compressed {} B -> {} B ({}%)",
        input.len(),
        packed.len(),
        100 * packed.len() / input.len()
    );

    // Attach it to the unified control kernel like any built-in RBB.
    let mut kernel = UnifiedControlKernel::new(16);
    kernel.register_module(ModuleHandle::from_rbb(&rbb, 0));
    kernel.submit(CommandPacket::new(
        SrcId::Application,
        RbbKind::Memory.id(),
        0,
        CommandCode::ModuleInit,
    ))?;
    let resp = kernel.step()?.expect("one command pending");
    println!(
        "kernel initialized the custom module: {} vendor register ops executed",
        resp.data[0]
    );

    kernel.submit(
        CommandPacket::new(
            SrcId::Application,
            RbbKind::Memory.id(),
            0,
            CommandCode::ModuleStatusWrite,
        )
        .with_data(vec![0x008, 9]),
    )?;
    kernel.step()?;
    println!("compression level set to 9 via the command interface");
    Ok(())
}
