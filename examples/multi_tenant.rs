//! Multi-tenancy through partial reconfiguration (§6, Discussion): PR
//! slots over the role region, per-tenant queue isolation, and live tenant
//! swap with realistic reconfiguration time.
//!
//! ```sh
//! cargo run --example multi_tenant
//! ```

use harmonia::hw::device::catalog;
use harmonia::hw::resource::ResourceUsage;
use harmonia::shell::pr::{MultiTenantRegion, TenantRole};
use harmonia::shell::{RoleSpec, TailoredShell, UnifiedShell};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Provider side: a multi-tenant base shell on Device A.
    let device = catalog::device_a();
    let unified = UnifiedShell::for_device(&device);
    let base = RoleSpec::builder("mt-base").network_gbps(100).build();
    let shell = TailoredShell::tailor(&unified, &base)?;

    // Split the remaining fabric into 4 PR slots, 1024 queues to share.
    let mut region = MultiTenantRegion::partition(&shell, device.capacity(), 4, 1024);
    let cap = *region.slots()[0].capacity();
    println!(
        "role region: 4 PR slots of {} LUTs / {} BRAM each",
        cap.lut, cap.bram
    );

    // Three tenants arrive with different footprints and queue needs.
    let tenants = [
        TenantRole::new("ml-inference", ResourceUsage::new(90_000, 140_000, 200, 40, 800), 256),
        TenantRole::new("packet-capture", ResourceUsage::new(40_000, 60_000, 80, 0, 0), 64),
        TenantRole::new("kv-cache", ResourceUsage::new(70_000, 100_000, 180, 40, 0), 128),
    ];
    for (slot, tenant) in tenants.into_iter().enumerate() {
        let name = tenant.name.clone();
        let load = region.deploy(slot, tenant)?;
        println!(
            "slot {slot}: '{}' deployed in {:.2} ms, queues {:?}",
            name,
            load as f64 / 1e9,
            region.queue_range(slot).expect("deployed")
        );
    }
    assert!(region.queues_disjoint());
    println!(
        "occupied {}/4 slots, {} queues still free, isolation verified",
        region.occupied(),
        region.free_queues()
    );

    // A tenant rolls a new version: live swap on slot 1 while the shell
    // and the other tenants keep running.
    let v2 = TenantRole::new("packet-capture-v2", ResourceUsage::new(45_000, 66_000, 90, 0, 0), 64);
    let (evicted, load) = region.swap(1, v2)?;
    println!(
        "swapped '{}' out of slot 1 in {:.2} ms (total PR time so far {:.2} ms)",
        evicted.name,
        load as f64 / 1e9,
        region.total_reconfig_ps() as f64 / 1e9
    );

    // An oversized tenant is rejected with the slot untouched.
    let whale = TenantRole::new("whale", ResourceUsage::new(2_000_000, 1, 0, 0, 0), 16);
    match region.deploy(3, whale) {
        Err(e) => println!("whale rejected as expected: {e}"),
        Ok(_) => unreachable!("whale cannot fit"),
    }
    Ok(())
}
