//! Live monitoring integration: RBB runtime counters flow into the
//! register files the unified control kernel serves, and `StatsRead`
//! returns them to host software — the full monitoring story of
//! Figures 6 and 8.

use harmonia::apps::common::to_packet_meta;
use harmonia::cmd::{CommandCode, CommandPacket, SrcId, UnifiedControlKernel};
use harmonia::hw::ip::dram::MemOp;
use harmonia::hw::Vendor;
use harmonia::shell::rbb::{HostRbb, MemoryRbb, NetworkRbb, Rbb, RbbKind};
use harmonia::workloads::PacketGen;

const LOCAL_MAC: u64 = 0x02_00_00_00_00_42;

fn stats_via_kernel(kernel: &mut UnifiedControlKernel, rbb_id: u8) -> Vec<u32> {
    kernel
        .submit(CommandPacket::new(
            SrcId::Application,
            rbb_id,
            0,
            CommandCode::StatsRead,
        ))
        .unwrap();
    kernel.step().unwrap().unwrap().data
}

#[test]
fn network_counters_reach_the_host() {
    // Shell side: process traffic through the RBB.
    let mut rbb = NetworkRbb::with_speed(Vendor::Xilinx, 100, 64);
    rbb.add_local_mac(LOCAL_MAC);
    let pkts = PacketGen::new(5, LOCAL_MAC).with_foreign_traffic(256, 5_000, 0.2);
    for p in &pkts {
        rbb.process_rx(&to_packet_meta(p));
    }
    let hw_stats = rbb.stats();

    // Kernel side: publish the counters, then read via a command.
    let mut kernel = UnifiedControlKernel::new(8);
    kernel.attach_shell(std::iter::once(&rbb as &dyn Rbb));
    rbb.publish_stats(
        kernel
            .module_regs_mut(RbbKind::Network.id(), 0)
            .expect("module registered"),
    )
    .expect("monitor block present");
    let words = stats_via_kernel(&mut kernel, RbbKind::Network.id());

    // mon_rx_0 = delivered packets, mon_rx_3 = filtered.
    assert_eq!(u64::from(words[0]), hw_stats.rx_packets);
    assert_eq!(u64::from(words[3]), hw_stats.filtered);
    assert!(hw_stats.filtered > 500, "filter saw no foreign traffic");
    assert_eq!(hw_stats.rx_packets + hw_stats.filtered, 5_000);
}

#[test]
fn host_queue_counters_reach_the_host() {
    let mut rbb = HostRbb::with_link(Vendor::Xilinx, 4, 8);
    for q in 0..4 {
        rbb.activate(q).unwrap();
        for _ in 0..10 {
            rbb.enqueue(q, 100).unwrap();
        }
    }
    let mut delivered = 0u32;
    for _ in 0..25 {
        if rbb.schedule().is_some() {
            delivered += 1;
        }
    }
    let mut kernel = UnifiedControlKernel::new(8);
    kernel.attach_shell(std::iter::once(&rbb as &dyn Rbb));
    rbb.publish_stats(kernel.module_regs_mut(RbbKind::Host.id(), 0).unwrap())
        .unwrap();
    let words = stats_via_kernel(&mut kernel, RbbKind::Host.id());
    // Layout: mon_qdepth_0 (total depth), …, mon_qpkts_0 at offset 8.
    assert_eq!(words[0], 40 - delivered); // still buffered
    assert_eq!(words[8], delivered); // dequeued total
}

#[test]
fn memory_counters_reach_the_host() {
    let mut rbb = MemoryRbb::ddr(Vendor::Xilinx, 4, 1);
    // Two passes over a small set: second pass hits the cache.
    for _ in 0..2 {
        rbb.run_trace((0..512u64).map(|i| MemOp::read(i * 64, 64)));
    }
    let mut kernel = UnifiedControlKernel::new(8);
    kernel.attach_shell(std::iter::once(&rbb as &dyn Rbb));
    rbb.publish_stats(kernel.module_regs_mut(RbbKind::Memory.id(), 0).unwrap())
        .unwrap();
    let words = stats_via_kernel(&mut kernel, RbbKind::Memory.id());
    // mon_cache_0 (cache hits) at offset 16 in the 24-word monitor block.
    let cache_hits = words[16];
    assert!(cache_hits >= 500, "second pass should hit: {cache_hits}");
    // mon_cache_3 = cache enabled flag.
    assert_eq!(words[19], 1);
}
