//! Portability integration tests: the Table 1 story — unified shell,
//! portable roles and a consistent host interface across the whole
//! heterogeneous catalog.

use harmonia::cmd::CommandCode;
use harmonia::frameworks::Framework;
use harmonia::hw::device::catalog;
use harmonia::shell::rbb::RbbKind;
use harmonia::{Harmonia, RoleSpec};

fn portable_role() -> RoleSpec {
    RoleSpec::builder("portable")
        .network_gbps(100)
        .queues(64)
        .build()
}

#[test]
fn identical_role_and_software_on_all_devices() {
    // The exact same role spec AND the exact same command sequence must
    // work on every device — that is the consistent-host-interface claim.
    let commands = [
        (RbbKind::Network.id(), CommandCode::ModuleReset, vec![]),
        (RbbKind::Network.id(), CommandCode::ModuleInit, vec![]),
        (
            RbbKind::Network.id(),
            CommandCode::TableWrite,
            vec![1u32, 2, 3],
        ),
        (RbbKind::Network.id(), CommandCode::StatsRead, vec![]),
        (RbbKind::Host.id(), CommandCode::StatsRead, vec![]),
        (0, CommandCode::HealthRead, vec![]),
    ];
    for device in catalog::all() {
        let mut d = Harmonia::deploy(&device, &portable_role())
            .unwrap_or_else(|e| panic!("{}: {e}", device.name()));
        for (rbb, code, data) in &commands {
            d.driver_mut()
                .cmd_raw(*rbb, 0, *code, data.clone())
                .unwrap_or_else(|e| panic!("{}: {code:?}: {e}", device.name()));
        }
    }
}

#[test]
fn unified_ports_are_identical_across_vendors() {
    use harmonia::hw::ip::{MacIp, VendorIp};
    use harmonia::hw::Vendor;
    use harmonia::platform::InterfaceWrapper;
    // The vendor-facing sides differ massively…
    let xi = MacIp::new(Vendor::Xilinx, 100);
    let it = MacIp::new(Vendor::Intel, 100);
    assert!(xi.native_interface().diff(&it.native_interface()).total() > 20);
    // …the role-facing sides do not differ at all.
    let wx = InterfaceWrapper::wrap(&xi, 512);
    let wi = InterfaceWrapper::wrap(&it, 512);
    assert_eq!(wx.ports(), wi.ports());
}

#[test]
fn baselines_cannot_cover_the_catalog() {
    for f in Framework::BASELINES {
        let covered = catalog::all().iter().filter(|d| f.supports(d)).count();
        assert!(covered <= 1, "{f} unexpectedly covers {covered} devices");
    }
    assert_eq!(
        catalog::all()
            .iter()
            .filter(|d| Framework::Harmonia.supports(d))
            .count(),
        4
    );
}

#[test]
fn shell_reuse_holds_for_every_catalog_migration_pair() {
    use harmonia::shell::rbb::MigrationKind;
    use harmonia::shell::{TailoredShell, UnifiedShell};
    let role = portable_role();
    let devices = catalog::all();
    for from in &devices {
        for to in &devices {
            let kind = MigrationKind::between(from, to);
            let unified = UnifiedShell::for_device(from);
            let shell = TailoredShell::tailor(&unified, &role).unwrap();
            let reuse = shell.workload(kind).reuse_fraction();
            match kind {
                MigrationKind::SamePlatform => assert_eq!(reuse, 1.0),
                MigrationKind::CrossChip => {
                    assert!(reuse >= 0.84, "{} -> {}: {reuse}", from.name(), to.name())
                }
                MigrationKind::CrossVendor => {
                    assert!(reuse >= 0.64, "{} -> {}: {reuse}", from.name(), to.name())
                }
            }
        }
    }
}

#[test]
fn legacy_generation_still_deploys() {
    // §2.2: generations coexist for 4+ years. A 25G role written against
    // the unified abstraction deploys on the legacy Stratix 10 board with
    // its DDR3 and Gen3 host link, unchanged.
    let device = catalog::device_e_legacy();
    let role = RoleSpec::builder("legacy")
        .network_gbps(25)
        .memory(harmonia::MemoryDemand::Ddr { channels: 1 })
        .queues(16)
        .user_domain(harmonia::sim::Freq::mhz(250), 128)
        .build();
    let mut d = Harmonia::deploy(&device, &role).expect("legacy deploys");
    d.driver_mut()
        .cmd_raw(RbbKind::Network.id(), 0, CommandCode::StatsRead, vec![])
        .expect("same software, older hardware");
    // The 25G instance was selected (128-bit datapath).
    let net = d
        .shell()
        .rbbs_of(RbbKind::Network)
        .next()
        .expect("network RBB");
    assert_eq!(net.instance().data_width_bits(), 128);
    // And the memory RBB runs DDR3 timing (12.8 GB/s peak).
    let mem = d.shell().rbbs_of(RbbKind::Memory).next().expect("memory");
    assert!(mem.instance().instance_name().contains("ddr3"));
}

#[test]
fn adapters_validate_against_their_devices() {
    use harmonia::platform::DeviceAdapter;
    for device in catalog::all() {
        let mut adapter = DeviceAdapter::generate(&device);
        adapter
            .dynamic_mut()
            .map_pin("refclk_p", 0)
            .map_pin("refclk_n", 1)
            .map_clock("dma", 0);
        assert!(adapter.validate().is_ok(), "{}", device.name());
        // And catch real mistakes.
        adapter.dynamic_mut().map_pin("oops", 1_000_000);
        assert!(adapter.validate().is_err());
    }
}
