//! The Figure 13 / Table 4 story as an integration test: the same hardware
//! state reached through the register interface and the command interface,
//! with the op counts the paper compares.

use harmonia::cmd::{CommandCode, UnifiedControlKernel};
use harmonia::host::cmd_driver::command_script;
use harmonia::host::reg_driver::RegisterDriver;
use harmonia::host::{CommandDriver, DmaEngine};
use harmonia::hw::device::catalog;
use harmonia::hw::ip::PcieDmaIp;
use harmonia::hw::regfile::RegOp;
use harmonia::metrics::lcs_diff;
use harmonia::shell::rbb::RbbKind;
use harmonia::shell::{MemoryDemand, RoleSpec, TailoredShell, UnifiedShell};

fn shell_on(device: &harmonia::hw::device::FpgaDevice) -> TailoredShell {
    let unified = UnifiedShell::for_device(device);
    let role = RoleSpec::builder("cvr")
        .network_gbps(100)
        .network_ports(1)
        .memory(MemoryDemand::Ddr { channels: 1 })
        .queues(192)
        .build();
    TailoredShell::tailor(&unified, &role).expect("deploys")
}

/// Both interfaces reach the same initialized state: the kernel executes
/// the same vendor init program that the register script embeds.
#[test]
fn same_init_state_both_ways() {
    let device = catalog::device_a();
    let shell = shell_on(&device);

    // Register path: apply the script by hand against the IP registers.
    let net = shell.rbbs_of(RbbKind::Network).next().unwrap();
    let mut ip_regs = net.instance().register_map();
    for op in net.instance().init_sequence() {
        if let RegOp::WaitStatus { addr, mask, expect } = op {
            let cur = ip_regs.read(addr).unwrap();
            ip_regs.hw_set(addr, (cur & !mask) | expect).unwrap();
        }
        ip_regs.apply(&op).unwrap();
    }
    let reg_path_ctl_tx = ip_regs.read(ip_regs.addr_of("ctl_rx").unwrap()).unwrap();

    // Command path: one ModuleInit through the kernel.
    let mut kernel = UnifiedControlKernel::new(16);
    kernel.attach_shell(shell.rbbs().iter().map(|r| r.as_ref()));
    let engine = DmaEngine::new(PcieDmaIp::new(harmonia::hw::Vendor::Xilinx, 4, 8));
    let mut driver = CommandDriver::new(engine, kernel);
    driver
        .cmd(RbbKind::Network, 0, CommandCode::ModuleInit, Vec::new())
        .unwrap();
    // The kernel performed at least the script's register ops.
    assert!(driver.kernel().reg_ops_executed() >= net.instance().init_sequence().len() as u64);
    assert_eq!(reg_path_ctl_tx, 0x1, "register path must initialize ctl_rx");
}

/// Table 4's three interaction classes, exact counts.
#[test]
fn table4_counts() {
    let shell = shell_on(&catalog::device_a());
    assert_eq!(RegisterDriver::monitoring_script(&shell).len(), 84);
    let net = shell.rbbs_of(RbbKind::Network).next().unwrap();
    assert_eq!(RegisterDriver::network_init_ops(net, 0x1000).len(), 115);
    let host = shell.rbbs_of(RbbKind::Host).next().unwrap();
    assert_eq!(RegisterDriver::host_config_ops(host, 0x2000).len(), 60);
    // Command side: 4 / 5 / 4 commands (one StatsRead per module +
    // HealthRead; the per-module command scripts).
    let script = command_script(&shell);
    assert_eq!(script.iter().filter(|c| c.rbb_id == 1).count(), 5);
    assert_eq!(script.iter().filter(|c| c.rbb_id == 3).count(), 4);
}

/// Migrating the register script between devices costs orders of magnitude
/// more modifications than migrating the command script.
#[test]
fn migration_costs_diverge() {
    let c = catalog::device_c();
    let d = catalog::device_d();
    let shell_c = {
        let unified = UnifiedShell::for_device(&c);
        let role = RoleSpec::builder("m").network_gbps(100).build();
        TailoredShell::tailor(&unified, &role).unwrap()
    };
    let shell_d = {
        let unified = UnifiedShell::for_device(&d);
        let role = RoleSpec::builder("m")
            .network_gbps(100)
            .memory(MemoryDemand::Ddr { channels: 1 })
            .build();
        TailoredShell::tailor(&unified, &role).unwrap()
    };
    let reg_diff = lcs_diff(
        &RegisterDriver::full_init_script(&c, &shell_c),
        &RegisterDriver::full_init_script(&d, &shell_d),
    );
    let cmd_diff = lcs_diff(&command_script(&shell_c), &command_script(&shell_d));
    assert!(reg_diff > 25 * cmd_diff.max(1), "reg {reg_diff} vs cmd {cmd_diff}");
}

/// Control-queue isolation keeps command latency flat under data load —
/// and the kernel's execution latency stays sub-microsecond.
#[test]
fn control_path_latency_isolated_from_data_path() {
    let shell = shell_on(&catalog::device_a());
    let mut kernel = UnifiedControlKernel::new(16);
    kernel.attach_shell(shell.rbbs().iter().map(|r| r.as_ref()));
    let engine = DmaEngine::new(PcieDmaIp::new(harmonia::hw::Vendor::Xilinx, 4, 8));
    let mut driver = CommandDriver::new(engine, kernel);
    driver
        .cmd(RbbKind::Network, 0, CommandCode::StatsRead, Vec::new())
        .unwrap();
    let quiet = driver.total_latency_ps();
    driver.engine_mut().enqueue_data(500_000_000); // 500 MB in flight
    driver
        .cmd(RbbKind::Network, 0, CommandCode::StatsRead, Vec::new())
        .unwrap();
    let busy = driver.total_latency_ps() - quiet;
    let ratio = busy as f64 / quiet as f64;
    assert!(
        (0.8..=1.2).contains(&ratio),
        "isolated command latency moved {ratio}x under load"
    );
}
