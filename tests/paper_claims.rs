//! The paper's headline numbers, asserted as integration tests. Each test
//! names the claim (abstract/§5) it checks and the band we accept for the
//! simulation substrate (EXPERIMENTS.md records exact values).

use harmonia::hw::device::catalog;
use harmonia::shell::rbb::MigrationKind;
use harmonia::shell::{MemoryDemand, RoleSpec, TailoredShell, UnifiedShell};

/// "Reduces shell development workloads by 69%–93%" — RBB reuse across the
/// evaluated migrations.
#[test]
fn claim_shell_development_reduction() {
    let unified = UnifiedShell::for_device(&catalog::device_a());
    let role = RoleSpec::builder("claim")
        .network_gbps(100)
        .memory(MemoryDemand::Ddr { channels: 1 })
        .build();
    let shell = TailoredShell::tailor(&unified, &role).unwrap();
    for rbb in shell.rbbs() {
        let xv = rbb.workload(MigrationKind::CrossVendor).reuse_fraction();
        let xc = rbb.workload(MigrationKind::CrossChip).reuse_fraction();
        assert!(
            (0.64..=0.93).contains(&xv) && (0.64..=0.95).contains(&xc),
            "{:?}: xv {xv:.2} xc {xc:.2}",
            rbb.kind()
        );
    }
}

/// "Save hardware resources by 3%–25.1% with shell tailoring."
#[test]
fn claim_tailoring_savings() {
    let unified = UnifiedShell::for_device(&catalog::device_a());
    let roles = [
        RoleSpec::builder("a")
            .network_gbps(100)
            .memory(MemoryDemand::Ddr { channels: 1 })
            .build(),
        RoleSpec::builder("b")
            .network_gbps(100)
            .network_ports(1)
            .memory(MemoryDemand::Hbm)
            .build(),
    ];
    for role in &roles {
        let t = TailoredShell::tailor(&unified, role).unwrap();
        let saving = 100.0 * t.overall_savings_vs(&unified);
        assert!((2.0..=31.0).contains(&saving), "{}: {saving:.1}%", role.name());
    }
}

/// "Negligible resource overhead (<0.63%)" per Harmonia component —
/// wrappers under 0.37%, control kernel under 0.67% (Figure 16).
#[test]
fn claim_component_overheads() {
    use harmonia::cmd::UnifiedControlKernel;
    use harmonia::hw::ip::{MacIp, PcieDmaIp, VendorIp};
    use harmonia::platform::InterfaceWrapper;
    for device in catalog::all() {
        let cap = device.capacity();
        let die = device.die_vendor();
        let ips: Vec<Box<dyn VendorIp>> = vec![
            Box::new(MacIp::new(die, 100)),
            Box::new(PcieDmaIp::new(die, 4, 8)),
        ];
        for ip in &ips {
            let w = InterfaceWrapper::wrap(ip.as_ref(), 512);
            let pct = w.resources().retargeted_for(cap).max_percent_of(cap);
            assert!(pct < 0.37, "{}: wrapper {pct:.3}%", device.name());
        }
        let uck = UnifiedControlKernel::resources()
            .retargeted_for(cap)
            .max_percent_of(cap);
        assert!(uck < 0.67, "{}: UCK {uck:.3}%", device.name());
    }
}

/// "Maintains the throughput and latency of applications … minimal
/// performance impact (<1%)."
#[test]
fn claim_performance_preserved() {
    use harmonia::apps::{App, HostNetwork, SecGateway};
    let apps: Vec<(Box<dyn App>, harmonia::apps::BitwPath)> = vec![
        (
            Box::new(SecGateway::new(harmonia::apps::sec_gateway::Action::Allow)),
            SecGateway::new(harmonia::apps::sec_gateway::Action::Allow).datapath(),
        ),
        (
            Box::new(HostNetwork::new(64)),
            HostNetwork::new(64).datapath(),
        ),
    ];
    for (_, path) in &apps {
        let without = path.clone().without_harmonia();
        for size in [64u32, 512, 1024] {
            assert_eq!(
                path.throughput_gbps(size),
                without.throughput_gbps(size),
                "throughput changed"
            );
            let inc = (path.latency_ps(size) - without.latency_ps(size)) as f64
                / without.latency_ps(size) as f64;
            assert!(inc < 0.01, "latency +{:.2}%", 100.0 * inc);
        }
    }
}

/// "Supports cross-vendor FPGAs" while each baseline is single-vendor
/// (Table 3), and "simplifies 15–23× software configurations" (Table 4).
#[test]
fn claim_cross_vendor_and_config_simplification() {
    use harmonia::frameworks::Framework;
    let vendors_covered = |f: Framework| {
        catalog::all()
            .iter()
            .filter(|d| f.supports(d))
            .map(|d| d.die_vendor())
            .collect::<std::collections::BTreeSet<_>>()
            .len()
    };
    for f in Framework::BASELINES {
        assert!(vendors_covered(f) <= 1, "{f} spans vendors");
    }
    assert_eq!(vendors_covered(Framework::Harmonia), 2);

    // Table 4 reductions: 21x / 23x / 15x.
    use harmonia::host::reg_driver::RegisterDriver;
    use harmonia::shell::rbb::RbbKind;
    let unified = UnifiedShell::for_device(&catalog::device_a());
    let role = RoleSpec::builder("t4")
        .network_gbps(100)
        .network_ports(1)
        .memory(MemoryDemand::Ddr { channels: 1 })
        .queues(192)
        .build();
    let shell = TailoredShell::tailor(&unified, &role).unwrap();
    let mon = RegisterDriver::monitoring_script(&shell).len() as f64 / 4.0;
    assert!((15.0..=23.0).contains(&mon), "monitoring {mon:.0}x");
    let net = shell.rbbs_of(RbbKind::Network).next().unwrap();
    let net_x = RegisterDriver::network_init_ops(net, 0).len() as f64 / 5.0;
    assert!((15.0..=23.0).contains(&net_x), "network {net_x:.0}x");
    let host = shell.rbbs_of(RbbKind::Host).next().unwrap();
    let host_x = RegisterDriver::host_config_ops(host, 0).len() as f64 / 4.0;
    assert!((15.0..=23.0).contains(&host_x), "host {host_x:.0}x");
}

/// The lossless-CDC condition S×M = R×U holds for the paper's parameter
/// progression (25/100/400G at 128/512/2048 bits).
#[test]
fn claim_cdc_lossless_progression() {
    use harmonia::shell::ParamCdc;
    use harmonia::sim::Freq;
    for (gbps, bits, mhz) in [(25u32, 128u32, 250u64), (100, 512, 322), (400, 2048, 402)] {
        let cdc = ParamCdc::new(Freq::mhz(mhz), bits, Freq::mhz(mhz), bits, 32);
        assert!(cdc.is_lossless(), "{gbps}G config not lossless");
        let report = cdc.simulate(10_000_000);
        assert_eq!(report.writer_stalls, 0, "{gbps}G stalled");
    }
}
