//! End-to-end integration: deploy → traffic → control, across every crate.

use harmonia::apps::common::to_packet_meta;
use harmonia::apps::l4lb::Backend;
use harmonia::apps::Layer4Lb;
use harmonia::cmd::CommandCode;
use harmonia::hw::device::catalog;
use harmonia::shell::rbb::network::RxDecision;
use harmonia::shell::rbb::{NetworkRbb, RbbKind};
use harmonia::workloads::PacketGen;
use harmonia::{Harmonia, MemoryDemand, RoleSpec};

const LOCAL_MAC: u64 = 0x02_00_00_00_00_77;

#[test]
fn deploy_and_control_full_stack() {
    let device = catalog::device_a();
    let role = RoleSpec::builder("e2e")
        .network_gbps(100)
        .memory(MemoryDemand::Ddr { channels: 1 })
        .queues(64)
        .build();
    let mut deployment = Harmonia::deploy(&device, &role).expect("deploys");

    // Control path: init already ran; reset + re-init the network module.
    deployment
        .driver_mut()
        .cmd(RbbKind::Network, 0, CommandCode::ModuleReset, Vec::new())
        .expect("reset");
    deployment
        .driver_mut()
        .cmd(RbbKind::Network, 0, CommandCode::ModuleInit, Vec::new())
        .expect("re-init");

    // Program a table entry and read it back through the kernel.
    deployment
        .driver_mut()
        .cmd(
            RbbKind::Network,
            0,
            CommandCode::TableWrite,
            vec![5, 0xDEAD, 0xBEEF],
        )
        .expect("table write");
    let read = deployment
        .driver_mut()
        .cmd(RbbKind::Network, 0, CommandCode::TableRead, vec![5])
        .expect("table read");
    assert_eq!(read.data, vec![0xDEAD, 0xBEEF]);

    // Stats flow end to end.
    let stats = deployment
        .driver_mut()
        .cmd(RbbKind::Host, 0, CommandCode::StatsRead, Vec::new())
        .expect("stats");
    assert_eq!(stats.data.len(), 32);
}

#[test]
fn packet_pipeline_through_shell_and_role() {
    // Dataplane: network RBB + LB role against generated traffic.
    let mut network = NetworkRbb::with_speed(harmonia::hw::Vendor::Xilinx, 100, 64);
    network.add_local_mac(LOCAL_MAC);
    let mut lb = Layer4Lb::new(
        (0..4).map(|id| Backend { id, weight: 1 }).collect(),
        10_000,
    );
    let pkts = PacketGen::new(3, LOCAL_MAC)
        .with_flows(500)
        .with_foreign_traffic(256, 20_000, 0.25);
    let mut forwarded = 0u64;
    for wp in &pkts {
        let meta = to_packet_meta(wp);
        if let RxDecision::Deliver { queue } = network.process_rx(&meta) {
            assert!(queue < 64);
            if lb.dispatch(&meta).is_some() {
                forwarded += 1;
            }
        }
    }
    let s = network.stats();
    assert_eq!(s.rx_packets + s.filtered, 20_000);
    assert!(s.filtered > 3_000, "filter did nothing");
    assert_eq!(forwarded, s.rx_packets);
    assert_eq!(lb.stats().new_connections, 500);
}

#[test]
fn deployment_rejects_overcommitted_roles_cleanly() {
    let device = catalog::device_c();
    let role = RoleSpec::builder("too-big")
        .network_gbps(100)
        .memory(MemoryDemand::Hbm) // C has no HBM
        .build();
    let err = Harmonia::deploy(&device, &role).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("tailoring"), "unexpected error: {msg}");
}

#[test]
fn board_test_app_validates_every_catalog_device() {
    for device in catalog::all() {
        let report = harmonia::apps::BoardTest::new(9).run(&device);
        assert!(
            report.all_passed(),
            "{} failed:\n{report}",
            device.name()
        );
    }
}
