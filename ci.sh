#!/usr/bin/env sh
# Offline verification gate for the Harmonia workspace.
#
# The workspace is hermetic: everything here must pass with no network and
# an empty cargo registry. A new dependency that isn't a workspace member
# fails the --offline builds below, which is the enforcement mechanism for
# the hermetic build policy (see README.md).
set -eu

cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "==> tier-1: release build"
cargo build --release --workspace --offline --locked

echo "==> tier-1: test suite (serial execution layer)"
HARMONIA_THREADS=1 cargo test -q --workspace --offline --locked

echo "==> tier-1: test suite (default parallelism)"
cargo test -q --workspace --offline --locked

echo "==> tier-1: test suite (event-driven engine)"
HARMONIA_ENGINE=event cargo test -q --workspace --offline --locked

echo "==> docs: rustdoc builds with zero warnings"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --offline --locked

echo "==> docs: doctests"
cargo test -q --doc --workspace --offline --locked

echo "==> benches compile"
cargo bench --no-run --workspace --offline --locked

echo "==> fault campaigns (smoke): deep randomized fault plans"
TESTKIT_CASES=128 cargo test -q --offline --locked -p harmonia-host --test fault_campaigns

echo "==> batched command path: host/cmd suites with batching enabled"
HARMONIA_CMD_BATCH=16 cargo test -q --offline --locked -p harmonia-host -p harmonia-cmd

echo "==> metrics plane: host/cmd suites with metrics enabled"
HARMONIA_METRICS=1 cargo test -q --offline --locked -p harmonia-host -p harmonia-cmd

echo "==> metrics smoke: Prometheus export from a paper-bench campaign"
cargo run -q --offline --locked -p harmonia-bench --bin metrics > metrics_export.prom
grep -q "^harmonia_cmd_acked_total " metrics_export.prom
rm -f metrics_export.prom

echo "==> paper bench (smoke): serial vs parallel sweep, both engines"
TESTKIT_BENCH_SMOKE=1 cargo bench -q --offline --locked -p harmonia-bench --bench paper
cp target/testkit-bench/BENCH_paper.json .

echo "==> cmdpath bench (smoke): batch x depth sweep, simulated throughput"
TESTKIT_BENCH_SMOKE=1 cargo bench -q --offline --locked -p harmonia-bench --bench cmdpath
cp target/testkit-bench/BENCH_cmdpath.json .

echo "==> tenancy: shell/host suites under both scheduling policies"
HARMONIA_TENANT_POLICY=rr cargo test -q --offline --locked \
    -p harmonia-shell --test tenancy_properties \
    -p harmonia-host --test tenant_campaigns
HARMONIA_TENANT_POLICY=wfq cargo test -q --offline --locked \
    -p harmonia-shell --test tenancy_properties \
    -p harmonia-host --test tenant_campaigns

echo "==> tenancy bench (smoke): policy x tenant-count noisy-neighbor sweep"
TESTKIT_BENCH_SMOKE=1 cargo bench -q --offline --locked -p harmonia-bench --bench tenancy
cp target/testkit-bench/BENCH_tenancy.json .

echo "==> fleet: campaign suite under both engines"
cargo test -q --offline --locked -p harmonia-fleet
HARMONIA_ENGINE=event cargo test -q --offline --locked -p harmonia-fleet

echo "==> fleet bench (smoke): policy x fleet-size sweep with a peak-hour kill"
TESTKIT_BENCH_SMOKE=1 cargo bench -q --offline --locked -p harmonia-bench --bench fleet
cp target/testkit-bench/BENCH_fleet.json .

echo "==> fleet metrics smoke: Prometheus export from a fleet campaign"
HARMONIA_FLEET_DEVICES=128 cargo run -q --offline --locked -p harmonia-bench --bin fleet > fleet_export.prom
grep -q "^harmonia_fleet_cmds_executed " fleet_export.prom
rm -f fleet_export.prom

echo "==> ci.sh: all gates passed"
